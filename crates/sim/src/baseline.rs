//! Baseline single-core simulation: the optimized sequential program on one
//! Itanium2-like in-order core (the paper's reference configuration).

use crate::arena::{self, SimArena};
use crate::engine::CycleBreakdown;
use crate::metrics::{LoopAnnotations, LoopCycleTracker};
use spt_interp::{Cursor, DecodedProgram, Memory};
use spt_mach::{CacheStats, MachineConfig};
use spt_sir::Program;
use spt_trace::{NullSink, Pipe, TraceSink};

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    pub cycles: u64,
    pub instrs: u64,
    pub breakdown: CycleBreakdown,
    pub cache: CacheStats,
    pub bp_mispredicts: u64,
    pub bp_lookups: u64,
    /// Cycles attributed to each annotated loop, by annotation order.
    pub loop_cycles: Vec<u64>,
    /// Instructions attributed to each annotated loop.
    pub loop_instrs: Vec<u64>,
    pub ret: Option<i64>,
    pub steps: u64,
    pub out_of_fuel: bool,
    /// Block-superstep memo hits/misses (0 when superstepping is off or
    /// the run is traced; see `MachineConfig::superstep`).
    pub superstep_hits: u64,
    pub superstep_misses: u64,
}

impl BaselineReport {
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

/// Simulate the sequential program on one core.
pub fn simulate_baseline(
    prog: &Program,
    cfg: &MachineConfig,
    annots: &LoopAnnotations,
    max_steps: u64,
) -> BaselineReport {
    simulate_baseline_with_memory(prog, cfg, annots, max_steps).0
}

/// Like [`simulate_baseline`], but also returns the final memory image for
/// differential state comparison.
pub fn simulate_baseline_with_memory(
    prog: &Program,
    cfg: &MachineConfig,
    annots: &LoopAnnotations,
    max_steps: u64,
) -> (BaselineReport, Memory) {
    simulate_baseline_traced(prog, cfg, annots, max_steps, &mut NullSink)
}

/// [`simulate_baseline`] with a trace sink: the single pipeline emits
/// `StallTransition` events whenever its idle-cause changes class. Routes
/// through the thread-local [`SimArena`] when `SPT_ARENA` is on (the
/// default), or a brand-new arena per run when off — both execute
/// [`baseline_core`], so the two modes share every instruction of the
/// simulation path.
pub fn simulate_baseline_traced(
    prog: &Program,
    cfg: &MachineConfig,
    annots: &LoopAnnotations,
    max_steps: u64,
    sink: &mut dyn TraceSink,
) -> (BaselineReport, Memory) {
    let dec = DecodedProgram::new(prog);
    if arena::arena_enabled() {
        arena::with_thread_arena(|a| baseline_core(a, &dec, prog, cfg, annots, max_steps, sink))
    } else {
        baseline_core(
            &mut SimArena::new(),
            &dec,
            prog,
            cfg,
            annots,
            max_steps,
            sink,
        )
    }
}

/// [`simulate_baseline`] with an explicit arena, reusing a decoded program
/// the arena retained under fingerprint `fp` and retiring every component
/// (decode included) back into it. The sweep's per-worker hot path.
pub fn simulate_baseline_in(
    arena: &mut SimArena,
    fp: u64,
    prog: &Program,
    cfg: &MachineConfig,
    annots: &LoopAnnotations,
    max_steps: u64,
) -> BaselineReport {
    let dec = arena
        .take_decoded(fp)
        .unwrap_or_else(|| DecodedProgram::new(prog));
    let (report, mem) = baseline_core(arena, &dec, prog, cfg, annots, max_steps, &mut NullSink);
    arena.put_mem(mem);
    arena.put_decoded(fp, dec);
    report
}

/// The baseline simulation loop proper: heap components are checked out of
/// `arena` (reset-or-fresh) and retired back at the end; the final memory
/// image is returned to the caller.
fn baseline_core(
    arena: &mut SimArena,
    dec: &DecodedProgram,
    prog: &Program,
    cfg: &MachineConfig,
    annots: &LoopAnnotations,
    max_steps: u64,
    sink: &mut dyn TraceSink,
) -> (BaselineReport, Memory) {
    let mut core = arena.take_core(cfg, Pipe::Main);
    let mut cache = arena.take_cache(cfg);
    let mut mem = arena.take_mem(prog);
    let mut cur = Cursor::at_entry_in(dec, arena.take_cursor_parts());
    let mut tracker = LoopCycleTracker::new(annots);

    // Superstepping is bit-identical by construction but bypassed on
    // traced runs so the trace layer sees the interpreter's native path.
    let traced = sink.enabled();
    let mut memo =
        (cfg.superstep && !traced).then(|| arena.take_memo(dec.n_flat_blocks() as usize));
    let mut steps = 0u64;
    while steps < max_steps {
        if let Some(memo) = memo.as_mut() {
            // The memo only exists on untraced runs: quiet issue.
            let n = cur.superstep(&mut mem, memo, max_steps - steps, &mut |ev| {
                core.step_issue_quiet(ev, &mut cache, cfg, &mut tracker);
            });
            if n > 0 {
                steps += n;
                continue;
            }
        }
        let Some(ev) = cur.step(&mut mem) else { break };
        steps += 1;
        if traced {
            core.step_issue(&ev, &mut cache, cfg, &mut tracker, sink);
        } else {
            core.step_issue_quiet(&ev, &mut cache, cfg, &mut tracker);
        }
    }

    let engine = &core.engine;
    let report = BaselineReport {
        cycles: engine.cycle() + 1,
        instrs: engine.instrs(),
        breakdown: engine.breakdown(),
        cache: cache.stats(),
        bp_mispredicts: engine.bp_mispredicts(),
        bp_lookups: engine.bp_lookups(),
        loop_cycles: tracker.cycles().to_vec(),
        loop_instrs: tracker.instrs().to_vec(),
        ret: cur.return_value(),
        steps,
        out_of_fuel: !cur.is_halted(),
        superstep_hits: memo.as_ref().map_or(0, |m| m.hits()),
        superstep_misses: memo.as_ref().map_or(0, |m| m.misses()),
    };

    arena.put_cursor_parts(cur.into_parts());
    arena.put_core(core);
    arena.put_cache(cache);
    if let Some(m) = memo {
        arena.put_memo(m);
    }
    arena.publish_retained();
    (report, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_sir::{BinOp, BlockId, FuncId, ProgramBuilder};

    fn array_sum(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        for a in 0..n {
            pb.datum(a as u64, a + 1);
        }
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let sum = f.reg();
        let nn = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(sum, 0);
        f.const_(nn, n);
        f.jmp(body);
        f.switch_to(body);
        let v = f.reg();
        f.load(v, i, 0);
        f.bin(BinOp::Add, sum, sum, v);
        f.addi(i, i, 1);
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.ret(Some(sum));
        let id = f.finish();
        pb.finish(id, (n as usize).max(1))
    }

    #[test]
    fn baseline_produces_correct_result_and_plausible_timing() {
        let prog = array_sum(100);
        let rep = simulate_baseline(
            &prog,
            &MachineConfig::default(),
            &LoopAnnotations::empty(),
            1_000_000,
        );
        assert_eq!(rep.ret, Some(5050));
        assert!(!rep.out_of_fuel);
        assert!(rep.cycles > 100, "must cost > 1 cycle/iter");
        assert!(rep.instrs > 500);
        assert!(rep.ipc() > 0.1 && rep.ipc() <= 6.0);
        // Cold misses on 100 words / 8 per block = ~13 blocks.
        assert!(rep.cache.l1_misses >= 12);
    }

    #[test]
    fn loop_attribution_covers_most_of_a_loopy_program() {
        let prog = array_sum(200);
        let annots = LoopAnnotations {
            loops: vec![crate::metrics::LoopAnnot {
                id: 0,
                func: FuncId(0),
                blocks: vec![BlockId(1)],
                fork_start: None,
            }],
        };
        let rep = simulate_baseline(&prog, &MachineConfig::default(), &annots, 1_000_000);
        assert_eq!(rep.loop_cycles.len(), 1);
        // The loop dominates execution.
        assert!(
            rep.loop_cycles[0] * 10 > rep.cycles * 8,
            "loop cycles {} of {}",
            rep.loop_cycles[0],
            rep.cycles
        );
        assert!(rep.loop_instrs[0] > 1000);
    }

    #[test]
    fn fuel_limit_reported() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("inf", 0);
        let b = f.new_block();
        f.jmp(b);
        f.switch_to(b);
        f.jmp(b);
        let id = f.finish();
        let prog = pb.finish(id, 0);
        let rep = simulate_baseline(
            &prog,
            &MachineConfig::default(),
            &LoopAnnotations::empty(),
            100,
        );
        assert!(rep.out_of_fuel);
        assert_eq!(rep.steps, 100);
    }

    #[test]
    fn breakdown_matches_total_roughly() {
        let prog = array_sum(50);
        let rep = simulate_baseline(
            &prog,
            &MachineConfig::default(),
            &LoopAnnotations::empty(),
            1_000_000,
        );
        let bd = rep.breakdown;
        assert!(bd.total() <= rep.cycles + 2);
        assert!(bd.total() + 2 >= rep.cycles);
        // Serial loads feeding the sum: some dcache stall expected.
        assert!(bd.dcache_stall > 0);
    }
}
