//! Per-run simulator state reuse (DESIGN.md §3i).
//!
//! [`SimArena`] owns every heap structure a simulation run needs —
//! architectural [`Memory`], cursor register-file slabs ([`CursorParts`]),
//! [`CacheSim`] level vectors, pipeline cores (scoreboard frame slots +
//! predictor tables), the speculative-thread buffer pool ([`SpecBufs`]),
//! the superstep [`MemoTable`], and a small LRU of [`DecodedProgram`]s —
//! so a sweep worker can run many (program, config, fuel) items without
//! reconstructing any of them. Components are *checked out* at run start
//! (`take_*`) and returned at run end (`put_*`); every checkout either
//! pops a retained component and resets it, or constructs a fresh one.
//!
//! **Bit-identical by construction:** each component's reset is
//! observationally equal to fresh construction (epoch/generation bumps
//! where the structure is stamped — `Ssb`, scoreboard, memo table —
//! explicit clear+refill elsewhere; see each component's `reset` doc). A
//! fresh arena's takes all construct fresh state, so `SPT_ARENA=off`
//! (which routes every run through a brand-new arena) shares 100% of the
//! code path with the default mode — the fallback's equivalence argument
//! is the empty-arena case of the same functions.

use crate::pipeline::PipelineCore;
use crate::specset::{AddrList, AddrMembers, RegSet};
use crate::ssb::Ssb;
use spt_interp::{CursorParts, DecodedProgram, Event, MemoTable, Memory};
use spt_mach::{CacheSim, MachineConfig};
use spt_sir::Program;
use spt_trace::Pipe;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Decoded programs retained per arena (the cores ∈ {2,4,8} runs of one
/// benchmark plus a little slack for interleaved baseline items).
const DECODE_CACHE_CAP: usize = 4;

/// Components handed out from a retained allocation (reset, not rebuilt).
static ARENA_REUSE: AtomicU64 = AtomicU64::new(0);
/// Components constructed fresh (empty arena, first run, or `SPT_ARENA=off`).
static ARENA_FRESH: AtomicU64 = AtomicU64::new(0);
/// Approximate bytes currently retained across all live arenas.
static ARENA_RETAINED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the arena telemetry counters (`spt-serve` `/metrics`,
/// `spt-top`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Component checkouts served from a retained allocation.
    pub reuse: u64,
    /// Component checkouts that constructed fresh state.
    pub fresh: u64,
    /// Approximate bytes retained across all live arenas right now.
    pub retained_bytes: u64,
}

/// Read the process-wide arena telemetry counters.
pub fn arena_stats() -> ArenaStats {
    ArenaStats {
        reuse: ARENA_REUSE.load(Ordering::Relaxed),
        fresh: ARENA_FRESH.load(Ordering::Relaxed),
        retained_bytes: ARENA_RETAINED_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether cross-run arena reuse is on. `SPT_ARENA=off` (or `0`) routes
/// every run through a brand-new arena instead of the thread-local one —
/// same code, fresh allocations — as the runtime fallback. Read once per
/// process; deliberately *not* part of `MachineConfig`, because the arena
/// cannot affect results (only allocation traffic) and must not perturb
/// memo keys.
pub fn arena_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !matches!(
            std::env::var("SPT_ARENA").as_deref(),
            Ok("off") | Ok("0") | Ok("OFF")
        )
    })
}

thread_local! {
    static THREAD_ARENA: RefCell<SimArena> = RefCell::new(SimArena::new());
}

/// Run `f` with this thread's long-lived arena. Re-entrant calls (an
/// arena-routed run starting another inside `f`) fall back to an isolated
/// temporary arena rather than aliasing the borrowed one.
pub fn with_thread_arena<R>(f: impl FnOnce(&mut SimArena) -> R) -> R {
    THREAD_ARENA.with(|a| match a.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut SimArena::new()),
    })
}

/// The heap buffers of one finished speculative thread, detached from the
/// run's decoded-program borrow so they can persist across runs. Contents
/// are dead; the SPT fork path clears every field before reuse (exactly
/// as it does for its within-run pool).
pub(crate) struct SpecBufs {
    pub(crate) cursor: CursorParts,
    pub(crate) ssb: Ssb,
    pub(crate) lab: AddrMembers,
    pub(crate) srb: Vec<Event>,
    pub(crate) live_in_reads: RegSet,
    pub(crate) live_in_vals: Vec<(u32, i64)>,
    pub(crate) spec_written: RegSet,
    pub(crate) post_fork_writes: RegSet,
    pub(crate) violated_addrs: AddrList,
}

impl SpecBufs {
    fn approx_bytes(&self) -> usize {
        self.cursor.approx_bytes()
            + self.ssb.approx_bytes()
            + self.srb.capacity() * std::mem::size_of::<Event>()
            + self.live_in_vals.capacity() * std::mem::size_of::<(u32, i64)>()
    }
}

/// Reusable simulator state for one worker thread (see module docs).
#[derive(Default)]
pub struct SimArena {
    /// Decoded-program LRU, most recently used last.
    dec: Vec<(u64, DecodedProgram)>,
    mem: Option<Memory>,
    cache: Option<CacheSim>,
    cores: Vec<PipelineCore>,
    cursor_parts: Vec<CursorParts>,
    spec_bufs: Vec<SpecBufs>,
    memo: Option<MemoTable>,
    /// Retained-bytes figure last published to the global gauge.
    published_bytes: u64,
}

impl SimArena {
    pub fn new() -> Self {
        SimArena::default()
    }

    fn reused() {
        ARENA_REUSE.fetch_add(1, Ordering::Relaxed);
    }

    fn constructed() {
        ARENA_FRESH.fetch_add(1, Ordering::Relaxed);
    }

    /// A decoded program previously [`SimArena::put_decoded`] under
    /// fingerprint `fp`, if still cached.
    pub fn take_decoded(&mut self, fp: u64) -> Option<DecodedProgram> {
        if let Some(i) = self.dec.iter().position(|(k, _)| *k == fp) {
            Self::reused();
            Some(self.dec.remove(i).1)
        } else {
            Self::constructed();
            None
        }
    }

    /// Retain a decoded program under fingerprint `fp` (LRU, capacity
    /// [`DECODE_CACHE_CAP`]).
    pub fn put_decoded(&mut self, fp: u64, dec: DecodedProgram) {
        self.dec.retain(|(k, _)| *k != fp);
        if self.dec.len() >= DECODE_CACHE_CAP {
            self.dec.remove(0);
        }
        self.dec.push((fp, dec));
    }

    /// Architectural memory in exactly [`Memory::for_program`]`(prog)`
    /// state.
    pub fn take_mem(&mut self, prog: &Program) -> Memory {
        match self.mem.take() {
            Some(mut m) => {
                Self::reused();
                m.reset_for(prog);
                m
            }
            None => {
                Self::constructed();
                Memory::for_program(prog)
            }
        }
    }

    pub fn put_mem(&mut self, mem: Memory) {
        self.mem = Some(mem);
    }

    /// Cache hierarchy in exactly [`CacheSim::new`]`(cfg)` state.
    pub fn take_cache(&mut self, cfg: &MachineConfig) -> CacheSim {
        match self.cache.take() {
            Some(mut c) => {
                Self::reused();
                c.reset(cfg);
                c
            }
            None => {
                Self::constructed();
                CacheSim::new(cfg)
            }
        }
    }

    pub fn put_cache(&mut self, cache: CacheSim) {
        self.cache = Some(cache);
    }

    /// Pipeline core in exactly [`PipelineCore::new`]`(cfg, pipe)` state.
    pub fn take_core(&mut self, cfg: &MachineConfig, pipe: Pipe) -> PipelineCore {
        match self.cores.pop() {
            Some(mut c) => {
                Self::reused();
                c.reset(cfg, pipe);
                c
            }
            None => {
                Self::constructed();
                PipelineCore::new(cfg, pipe)
            }
        }
    }

    pub fn put_core(&mut self, core: PipelineCore) {
        self.cores.push(core);
    }

    /// Cursor heap buffers (empty from the caller's perspective; the
    /// cursor constructors clear before refilling).
    pub fn take_cursor_parts(&mut self) -> CursorParts {
        match self.cursor_parts.pop() {
            Some(p) => {
                Self::reused();
                p
            }
            None => {
                Self::constructed();
                CursorParts::default()
            }
        }
    }

    pub fn put_cursor_parts(&mut self, parts: CursorParts) {
        self.cursor_parts.push(parts);
    }

    /// Superstep memo table observationally equal to
    /// [`MemoTable::new`]`(capacity)`.
    pub fn take_memo(&mut self, capacity: usize) -> MemoTable {
        match self.memo.take() {
            Some(mut m) => {
                Self::reused();
                m.reset(capacity);
                m
            }
            None => {
                Self::constructed();
                MemoTable::new(capacity)
            }
        }
    }

    pub fn put_memo(&mut self, memo: MemoTable) {
        self.memo = Some(memo);
    }

    /// One retained speculative-thread buffer set, if any. Counted on the
    /// fork path by the caller (a miss there falls through to the
    /// fresh-construction arm, which counts itself).
    pub(crate) fn take_spec_bufs_pool(&mut self) -> Vec<SpecBufs> {
        std::mem::take(&mut self.spec_bufs)
    }

    pub(crate) fn put_spec_bufs_pool(&mut self, bufs: Vec<SpecBufs>) {
        self.spec_bufs = bufs;
    }

    fn approx_retained_bytes(&self) -> u64 {
        let mut b = 0usize;
        for (_, d) in &self.dec {
            b += d.approx_bytes();
        }
        if let Some(m) = &self.mem {
            b += m.approx_bytes();
        }
        if let Some(c) = &self.cache {
            b += c.approx_bytes();
        }
        for c in &self.cores {
            b += c.approx_bytes();
        }
        for p in &self.cursor_parts {
            b += p.approx_bytes();
        }
        for s in &self.spec_bufs {
            b += s.approx_bytes();
        }
        if let Some(m) = &self.memo {
            b += m.approx_bytes();
        }
        b as u64
    }

    /// Re-publish this arena's retained-bytes estimate to the global gauge
    /// (called at run end, after put-backs).
    pub fn publish_retained(&mut self) {
        let now = self.approx_retained_bytes();
        let delta = now.wrapping_sub(self.published_bytes);
        ARENA_RETAINED_BYTES.fetch_add(delta, Ordering::Relaxed);
        self.published_bytes = now;
    }
}

impl Drop for SimArena {
    fn drop(&mut self) {
        // Keep the global gauge honest when a worker thread (and its
        // thread-local arena) exits.
        ARENA_RETAINED_BYTES.fetch_sub(self.published_bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_sir::ProgramBuilder;

    fn tiny_prog(mem_words: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        pb.datum(1, 41);
        let mut f = pb.func("m", 0);
        f.ret(None);
        let id = f.finish();
        pb.finish(id, mem_words)
    }

    #[test]
    fn take_mem_matches_fresh_construction() {
        let p8 = tiny_prog(8);
        let p4 = tiny_prog(4);
        let mut a = SimArena::new();
        let m = a.take_mem(&p8);
        assert_eq!(m, Memory::for_program(&p8));
        a.put_mem(m);
        // Shrinking program: retained memory must not leak old size or data.
        let m = a.take_mem(&p4);
        assert_eq!(m, Memory::for_program(&p4));
    }

    #[test]
    fn decode_cache_lru_evicts_oldest() {
        let p = tiny_prog(2);
        let mut a = SimArena::new();
        for fp in 0..=DECODE_CACHE_CAP as u64 {
            a.put_decoded(fp, DecodedProgram::new(&p));
        }
        assert!(a.take_decoded(0).is_none(), "oldest entry evicted");
        assert!(a.take_decoded(1).is_some());
    }

    #[test]
    fn retained_bytes_accounting_is_symmetric() {
        // The global gauge is shared with concurrently-running tests, so
        // assert on this arena's own published figure: publish records the
        // estimate it added, and Drop withdraws exactly that amount.
        let mut a = SimArena::new();
        a.put_mem(Memory::for_program(&tiny_prog(1024)));
        a.publish_retained();
        assert!(a.published_bytes >= 1024 * 8);
        a.put_cache(CacheSim::new(&MachineConfig::default()));
        a.publish_retained();
        assert!(a.published_bytes > 1024 * 8);
    }
}
