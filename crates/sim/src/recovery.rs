//! Pluggable misspeculation recovery policies.
//!
//! `MachineConfig::recovery` selects a [`RecoveryKind`]; the simulator
//! dispatches it here to a [`RecoveryPolicy`] implementation. A policy
//! decides *what happens at the dependence check* — whether a clean
//! thread may commit its context wholesale and whether a violated thread
//! is selectively re-executed or discarded outright. The fabric mechanics
//! (SRB walk, SSB write-back, divergence detection) stay in `spt` and are
//! shared by every policy.

use spt_mach::RecoveryKind;

/// Behaviour of the machine at a dependence check.
pub trait RecoveryPolicy: Sync {
    /// May a violation-free speculative thread commit its whole register
    /// context and store buffer at once (the fast-commit shortcut)?
    fn allows_fast_commit(&self) -> bool;
    /// On a violation, discard all speculative results instead of walking
    /// the SRB with selective re-execution?
    fn squash_on_violation(&self) -> bool;
    /// Short stable name for reports and traces.
    fn name(&self) -> &'static str;
}

/// Selective re-execution with fast commit — the SPT mechanism and the
/// Table 1 default.
pub struct SrxFastCommit;

/// Selective re-execution without the fast-commit shortcut: every
/// speculative thread goes through the replay pipeline even when no
/// violation occurred.
pub struct SrxOnly;

/// Full squash — what most other speculative multithreaded architectures
/// do (per the paper): any violation trashes the entire speculative
/// thread and the main thread re-executes it normally.
pub struct FullSquash;

impl RecoveryPolicy for SrxFastCommit {
    fn allows_fast_commit(&self) -> bool {
        true
    }
    fn squash_on_violation(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "srx+fc"
    }
}

impl RecoveryPolicy for SrxOnly {
    fn allows_fast_commit(&self) -> bool {
        false
    }
    fn squash_on_violation(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "srx"
    }
}

impl RecoveryPolicy for FullSquash {
    fn allows_fast_commit(&self) -> bool {
        true
    }
    fn squash_on_violation(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "squash"
    }
}

/// Dispatch a configuration-level [`RecoveryKind`] to its policy.
pub fn policy_for(kind: RecoveryKind) -> &'static dyn RecoveryPolicy {
    match kind {
        RecoveryKind::SrxFc => &SrxFastCommit,
        RecoveryKind::SrxOnly => &SrxOnly,
        RecoveryKind::Squash => &FullSquash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_kind() {
        assert_eq!(policy_for(RecoveryKind::SrxFc).name(), "srx+fc");
        assert_eq!(policy_for(RecoveryKind::SrxOnly).name(), "srx");
        assert_eq!(policy_for(RecoveryKind::Squash).name(), "squash");
    }

    #[test]
    fn policy_semantics() {
        let fc = policy_for(RecoveryKind::SrxFc);
        assert!(fc.allows_fast_commit() && !fc.squash_on_violation());
        let srx = policy_for(RecoveryKind::SrxOnly);
        assert!(!srx.allows_fast_commit() && !srx.squash_on_violation());
        let sq = policy_for(RecoveryKind::Squash);
        assert!(sq.allows_fast_commit() && sq.squash_on_violation());
    }
}
