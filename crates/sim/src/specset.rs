//! Flat containers for per-thread speculation state.
//!
//! The SPT machine consults its dependence-tracking sets on every
//! speculative instruction: live-in reads, spec-written registers,
//! post-fork writes, the load-address buffer, violated addresses. Hash
//! sets put a hasher and a probe sequence on that per-cycle path; the
//! containers here are either plain bitsets (registers are small dense
//! indices) or generation-stamped arrays (addresses are pre-wrapped to
//! the word-addressed memory size), so membership is one indexed load
//! and a reset is an epoch bump.
//!
//! All of them iterate deterministically — bitsets in ascending register
//! order, stamped lists in insertion order — so nothing here perturbs the
//! simulators' bit-exact results or trace bytes.

/// Bitset over register indices (ascending iteration order).
#[derive(Debug, Default, Clone)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn insert(&mut self, r: u32) {
        let w = (r / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (r % 64);
    }

    #[inline]
    pub fn remove(&mut self, r: u32) {
        if let Some(w) = self.words.get_mut((r / 64) as usize) {
            *w &= !(1u64 << (r % 64));
        }
    }

    #[inline]
    pub fn contains(&self, r: u32) -> bool {
        match self.words.get((r / 64) as usize) {
            Some(w) => w & (1u64 << (r % 64)) != 0,
            None => false,
        }
    }

    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn extend_from_slice(&mut self, regs: &[u32]) {
        for &r in regs {
            self.insert(r);
        }
    }

    /// Registers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                // Compute in usize: `wi as u32 * 64` overflows for word
                // indices ≥ 2^26 (registers in the last words of a
                // maximal set), even though the final index fits u32.
                Some((wi * 64 + b as usize) as u32)
            })
        })
    }

    /// `self ∩ other` as a fresh set.
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        let n = self.words.len().min(other.words.len());
        RegSet {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
        }
    }

    /// Backing bitset words (bit `r % 64` of word `r / 64`), for word-wise
    /// intersection against cursor dirty-word masks.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `self ∪ other` as a sorted register list.
    pub fn union_sorted(&self, other: &RegSet) -> Vec<u32> {
        let mut out = Vec::new();
        self.union_sorted_into(other, &mut out);
        out
    }

    /// [`RegSet::union_sorted`] appending into a caller-owned buffer, so
    /// hot paths can recycle the allocation across calls.
    pub fn union_sorted_into(&self, other: &RegSet, out: &mut Vec<u32>) {
        let n = self.words.len().max(other.words.len());
        for wi in 0..n {
            let mut bits = self.words.get(wi).copied().unwrap_or(0)
                | other.words.get(wi).copied().unwrap_or(0);
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                // Same usize-first arithmetic as `iter` (see above).
                out.push((wi * 64 + b as usize) as u32);
            }
        }
    }
}

/// Value-based register dependence check restricted to dirty words
/// (DESIGN.md §3h): the violation set `{r ∈ live_in : fork_val(r) ≠
/// now[r]}` over the lazily captured live-in list of `(register,
/// fork-time value)` pairs. A clear dirty bit proves the register still
/// holds its fork-time value (the cursor sets the bit on every write and
/// the mask was cleared at the fork), so skipping the compare cannot drop
/// a violation — this returns exactly the set the full per-live-in
/// compare would. A dirty slice shorter than the register range reads the
/// missing words as clean.
pub fn dirty_value_check(dirty: &[u64], live_in_vals: &[(u32, i64)], now: &[i64]) -> RegSet {
    let mut v = RegSet::new();
    // Clean frame — the common case on the fast-commit path: nothing can
    // differ, skip the per-live-in walk outright.
    if dirty.iter().all(|&w| w == 0) {
        return v;
    }
    for &(r, fv) in live_in_vals {
        let w = dirty.get((r / 64) as usize).copied().unwrap_or(0);
        if w & (1u64 << (r % 64)) != 0 && fv != now[r as usize] {
            v.insert(r);
        }
    }
    v
}

/// Per-call-depth register marks: the replay checker's "updated" set,
/// keyed by `(frame depth, register)`.
///
/// Epoch-wrap audit: unlike [`AddrMembers`] and the speculative store
/// buffer, this container carries **no** generation counters — levels are
/// plain bitsets, and the replay checker builds a fresh `DepthRegSet` per
/// replay rather than epoch-clearing a long-lived one — so there is no
/// 2^32-epoch aliasing hazard here, even in a daemon that simulates
/// forever. If a pooled/stamped variant is ever introduced, it must adopt
/// the wrap hard-reset discipline those containers use.
#[derive(Debug, Default)]
pub struct DepthRegSet {
    levels: Vec<RegSet>,
}

impl DepthRegSet {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn level_mut(&mut self, depth: u32) -> &mut RegSet {
        let d = depth as usize;
        if d >= self.levels.len() {
            self.levels.resize_with(d + 1, RegSet::new);
        }
        &mut self.levels[d]
    }

    pub fn insert(&mut self, depth: u32, r: u32) {
        self.level_mut(depth).insert(r);
    }

    pub fn remove(&mut self, depth: u32, r: u32) {
        if let Some(l) = self.levels.get_mut(depth as usize) {
            l.remove(r);
        }
    }

    #[inline]
    pub fn contains(&self, depth: u32, r: u32) -> bool {
        match self.levels.get(depth as usize) {
            Some(l) => l.contains(r),
            None => false,
        }
    }

    /// Install `set` as the marks of `depth` (seeding from a violation
    /// set).
    pub fn seed_level(&mut self, depth: u32, set: RegSet) {
        *self.level_mut(depth) = set;
    }
}

/// Generation-stamped membership set over word addresses. `clear` is an
/// epoch bump; on 32-bit epoch wrap the stamp array is hard-reset so a
/// stamp from 2^32 epochs ago can never read as live (same discipline as
/// the speculative store buffer).
#[derive(Debug)]
pub struct AddrMembers {
    stamps: Vec<u32>,
    epoch: u32,
}

impl Default for AddrMembers {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrMembers {
    pub fn new() -> Self {
        AddrMembers {
            stamps: Vec::new(),
            epoch: 1,
        }
    }

    #[inline]
    pub fn insert(&mut self, addr: u64) {
        let a = addr as usize;
        if a >= self.stamps.len() {
            self.stamps.resize(a + 1, 0);
        }
        self.stamps[a] = self.epoch;
    }

    #[inline]
    pub fn remove(&mut self, addr: u64) {
        if let Some(s) = self.stamps.get_mut(addr as usize) {
            *s = 0;
        }
    }

    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        matches!(self.stamps.get(addr as usize), Some(&s) if s == self.epoch)
    }

    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Current epoch (exposed for the wrap test).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Jump the epoch counter — test hook for the 2^32-epoch wrap.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Stamped address set that also keeps a deduplicated insertion-order
/// list of its members (for deterministic iteration). No removal.
#[derive(Debug, Default)]
pub struct AddrList {
    members: AddrMembers,
    items: Vec<u64>,
}

impl AddrList {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, addr: u64) {
        if !self.members.contains(addr) {
            self.members.insert(addr);
            self.items.push(addr);
        }
    }

    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        self.members.contains(addr)
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Members in insertion order (no duplicates).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }

    pub fn clear(&mut self) {
        self.members.clear();
        self.items.clear();
    }

    /// Jump the inner epoch counter — test hook for the 2^32-epoch wrap
    /// (parity with [`AddrMembers::force_epoch`]).
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.members.force_epoch(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regset_insert_contains_remove() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(64);
        s.insert(200);
        assert!(s.contains(3) && s.contains(64) && s.contains(200));
        assert!(!s.contains(4) && !s.contains(1000));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 200]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn regset_set_algebra_is_sorted() {
        let mut a = RegSet::new();
        let mut b = RegSet::new();
        a.extend_from_slice(&[1, 65, 7]);
        b.extend_from_slice(&[65, 2, 7, 300]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![7, 65]);
        assert_eq!(a.union_sorted(&b), vec![1, 2, 7, 65, 300]);
        // Intersection across unequal word counts truncates safely.
        assert!(!a.intersection(&b).contains(300));
    }

    #[test]
    fn regset_last_word_of_a_maximal_set() {
        // Boundary: the highest register index lives in word 2^26 - 1,
        // where the old `wi as u32 * 64` multiply overflowed u32 (a
        // panic in debug builds). Bit index math must widen to usize
        // first and only then narrow the finished sum.
        let mut s = RegSet::new();
        s.insert(u32::MAX);
        s.insert(u32::MAX - 1);
        s.insert(0);
        assert!(s.contains(u32::MAX) && s.contains(u32::MAX - 1));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, u32::MAX - 1, u32::MAX]
        );
        assert_eq!(
            s.union_sorted(&RegSet::new()),
            vec![0, u32::MAX - 1, u32::MAX]
        );
        let mut other = RegSet::new();
        other.insert(u32::MAX);
        assert_eq!(
            s.intersection(&other).iter().collect::<Vec<_>>(),
            vec![u32::MAX]
        );
    }

    #[test]
    fn dirty_value_check_matches_full_compare() {
        let now = [1i64, 9, 3, 8, 5];
        let live = [(0u32, 1i64), (1, 2), (3, 4), (4, 5)];
        // All-dirty mask ⇒ identical to the full per-live-in compare.
        let v = dirty_value_check(&[!0u64], &live, &now);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 3]);
        // A mask covering exactly the written registers (the cursor
        // invariant: changed ⊆ dirty) yields the same violation set.
        let v2 = dirty_value_check(&[0b01010], &live, &now);
        assert_eq!(v2.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn dirty_value_check_clean_frame_flags_nothing() {
        let now = [1i64, 2, 3];
        // Values deliberately mismatched: a clean mask must suppress the
        // compare even when the captured value differs.
        let live = [(0u32, 7i64), (1, 7), (2, 7)];
        let v = dirty_value_check(&[0u64], &live, &now);
        assert!(v.is_empty());
        // A live-in register beyond the dirty slice reads its word as
        // clean rather than indexing out of bounds (`now` is indexed only
        // for dirty registers).
        let wide = [(200u32, 7i64)];
        let v2 = dirty_value_check(&[!0u64], &wide, &now);
        assert!(v2.is_empty());
    }

    #[test]
    fn dirty_value_check_spans_words() {
        let mut now = vec![0i64; 130];
        now[70] = 1;
        now[128] = 2;
        let live = [(70u32, 0i64), (100, 0), (128, 0)];
        let dirty = [0u64, 1 << (70 - 64), 1 << (128 - 128)];
        let v = dirty_value_check(&dirty, &live, &now);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![70, 128]);
    }

    #[test]
    fn depth_regset_tracks_levels_independently() {
        let mut s = DepthRegSet::new();
        s.insert(0, 5);
        s.insert(3, 5);
        assert!(s.contains(0, 5));
        assert!(!s.contains(1, 5));
        assert!(s.contains(3, 5));
        s.remove(3, 5);
        assert!(!s.contains(3, 5));
        // Removing at a depth never touched is a no-op.
        s.remove(9, 1);
        let mut seed = RegSet::new();
        seed.insert(8);
        s.seed_level(2, seed);
        assert!(s.contains(2, 8));
    }

    #[test]
    fn addr_members_epoch_reset() {
        let mut s = AddrMembers::new();
        s.insert(5);
        assert!(s.contains(5));
        s.clear();
        assert!(!s.contains(5));
        s.insert(2);
        s.remove(2);
        assert!(!s.contains(2));
    }

    #[test]
    fn addr_members_epoch_wrap_hard_resets() {
        let mut s = AddrMembers::new();
        s.insert(1); // stamped with epoch 1
        s.force_epoch(u32::MAX);
        s.clear(); // wraps -> hard reset, epoch back to 1
        assert_eq!(s.epoch(), 1);
        assert!(!s.contains(1), "ancient stamp must not alias a new epoch");
        s.insert(1);
        assert!(s.contains(1));
    }

    #[test]
    fn addr_list_epoch_wrap_hard_resets() {
        let mut s = AddrList::new();
        s.insert(7); // stamped with epoch 1
        s.force_epoch(u32::MAX);
        s.clear(); // wraps -> inner stamps hard-reset
        assert!(!s.contains(7), "ancient stamp must not alias a new epoch");
        assert!(s.is_empty());
        s.insert(7);
        assert!(s.contains(7));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn addr_list_dedups_and_preserves_order() {
        let mut s = AddrList::new();
        s.insert(9);
        s.insert(2);
        s.insert(9);
        assert!(s.contains(9) && s.contains(2));
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![9, 2]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(9));
    }
}
