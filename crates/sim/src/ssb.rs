//! Speculative store buffer (SSB) and the speculative memory view.
//!
//! All stores by the speculative thread land in the SSB; speculative loads
//! first look up the SSB and only go to the shared cache/memory when no
//! matching store exists (§3, "Speculative Store Buffer"). On fast commit
//! the buffered stores are written back in program order; on kill or replay
//! they are discarded (replay re-executes stores against architectural
//! memory directly).
//!
//! The buffer is a generation-stamped direct-mapped array over the
//! word-addressed memory: slot `a` holds the latest speculative value for
//! address `a` plus the epoch it was written in. `clear` is a single epoch
//! bump — O(1), no rehash, no realloc — which matters because the SPT
//! machine clears an SSB on every fork, kill and commit. Stamps only
//! compare equal within one epoch; when the 32-bit epoch counter would
//! wrap, the whole array is hard-reset so stale stamps from 2^32 epochs
//! ago can never alias a fresh one.

use spt_interp::{MemView, Memory};

/// The speculative store buffer.
#[derive(Debug)]
pub struct Ssb {
    /// Per-word-address (epoch stamp, value). A slot is live iff its stamp
    /// equals the current epoch. Stamp 0 is never a valid epoch.
    slots: Vec<(u32, i64)>,
    epoch: u32,
    /// Program-order log for write-back.
    log: Vec<(u64, i64)>,
}

impl Default for Ssb {
    fn default() -> Self {
        Self::new()
    }
}

impl Ssb {
    pub fn new() -> Self {
        Ssb {
            slots: Vec::new(),
            epoch: 1,
            log: Vec::new(),
        }
    }

    /// A buffer pre-sized for a memory of `words` words, so no growth
    /// happens on the store path (cursor addresses are already wrapped to
    /// the memory size).
    pub fn with_words(words: usize) -> Self {
        Ssb {
            slots: vec![(0, 0); words],
            epoch: 1,
            log: Vec::new(),
        }
    }

    #[inline]
    fn grow_for(&mut self, addr: u64) {
        if addr as usize >= self.slots.len() {
            self.slots.resize(addr as usize + 1, (0, 0));
        }
    }

    pub fn store(&mut self, addr: u64, val: i64) {
        self.grow_for(addr);
        self.slots[addr as usize] = (self.epoch, val);
        self.log.push((addr, val));
    }

    /// Latest speculative value for `addr`, if any (store-to-load
    /// forwarding).
    #[inline]
    pub fn lookup(&self, addr: u64) -> Option<i64> {
        match self.slots.get(addr as usize) {
            Some(&(stamp, val)) if stamp == self.epoch => Some(val),
            _ => None,
        }
    }

    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        matches!(self.slots.get(addr as usize), Some(&(stamp, _)) if stamp == self.epoch)
    }

    /// Number of buffered stores (dynamic, incl. overwrites).
    pub fn len(&self) -> usize {
        self.log.len()
    }

    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Addresses of all outstanding stores, in program order (with
    /// duplicates). The N-core fabric checks these against downstream
    /// threads' load-address buffers when a thread's stores commit.
    pub fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.log.iter().map(|&(a, _)| a)
    }

    /// Write all outstanding stores back to memory in program order.
    pub fn drain_to(&mut self, mem: &mut Memory) {
        for &(addr, val) in &self.log {
            MemView::store(mem, addr, val);
        }
        self.clear();
    }

    /// Grow the slot array to cover a memory of `words` words (never
    /// shrinks). Combined with [`Ssb::clear`], this makes a pooled buffer
    /// observationally equal to [`Ssb::with_words`]`(words)`: new slots
    /// carry stamp 0 (never live) and old slots' stamps are dead behind the
    /// epoch bump (arena path, DESIGN.md §3i).
    #[inline]
    pub fn ensure_words(&mut self, words: usize) {
        if self.slots.len() < words {
            self.slots.resize(words, (0, 0));
        }
    }

    /// Approximate retained heap bytes (arena telemetry).
    pub fn approx_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(u32, i64)>()
            + self.log.capacity() * std::mem::size_of::<(u64, i64)>()
    }

    /// Discard all buffered stores: one epoch bump. On epoch wrap the slot
    /// array is hard-reset, so a stamp written 2^32 epochs ago can never
    /// read as live again.
    pub fn clear(&mut self) {
        self.log.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.slots.iter_mut().for_each(|s| *s = (0, 0));
            self.epoch = 1;
        }
    }

    /// Current epoch (exposed for the wrap test).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Jump the epoch counter — test hook to exercise the 2^32-epoch wrap
    /// without 2^32 `clear` calls.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// The speculative pipeline's view of memory: SSB overlay on architectural
/// memory. Loads forward from the SSB when possible; stores never reach
/// architectural state.
pub struct SpecMem<'a> {
    pub ssb: &'a mut Ssb,
    pub base: &'a mut Memory,
}

impl MemView for SpecMem<'_> {
    fn load(&mut self, addr: u64) -> i64 {
        match self.ssb.lookup(addr) {
            Some(v) => v,
            None => self.base.load(addr),
        }
    }

    fn store(&mut self, addr: u64, val: i64) {
        self.ssb.store(addr, val);
    }

    fn words(&self) -> usize {
        self.base.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_to_load_forwarding() {
        let mut ssb = Ssb::new();
        let mut mem = Memory::new(8);
        mem.poke(3, 10);
        let mut view = SpecMem {
            ssb: &mut ssb,
            base: &mut mem,
        };
        assert_eq!(view.load(3), 10); // falls through to base
        view.store(3, 99);
        assert_eq!(view.load(3), 99); // forwarded
        let _ = view;
        assert_eq!(mem.peek(3), 10); // architectural state untouched
    }

    #[test]
    fn latest_store_wins() {
        let mut ssb = Ssb::new();
        ssb.store(1, 5);
        ssb.store(1, 7);
        assert_eq!(ssb.lookup(1), Some(7));
        assert_eq!(ssb.len(), 2);
    }

    #[test]
    fn drain_preserves_program_order() {
        let mut ssb = Ssb::new();
        let mut mem = Memory::new(8);
        ssb.store(2, 1);
        ssb.store(4, 2);
        ssb.store(2, 3); // overwrites the first
        ssb.drain_to(&mut mem);
        assert_eq!(mem.peek(2), 3);
        assert_eq!(mem.peek(4), 2);
        assert!(ssb.is_empty());
        assert!(!ssb.contains(2));
    }

    #[test]
    fn addrs_lists_program_order_with_duplicates() {
        let mut ssb = Ssb::new();
        ssb.store(2, 1);
        ssb.store(4, 2);
        ssb.store(2, 3);
        assert_eq!(ssb.addrs().collect::<Vec<_>>(), vec![2, 4, 2]);
    }

    #[test]
    fn clear_discards_everything() {
        let mut ssb = Ssb::new();
        ssb.store(1, 1);
        ssb.clear();
        assert!(ssb.is_empty());
        assert_eq!(ssb.lookup(1), None);
    }

    #[test]
    fn words_passes_through() {
        let mut ssb = Ssb::new();
        let mut mem = Memory::new(16);
        let view = SpecMem {
            ssb: &mut ssb,
            base: &mut mem,
        };
        assert_eq!(view.words(), 16);
    }

    #[test]
    fn presized_buffer_covers_word_range() {
        let mut ssb = Ssb::with_words(8);
        for a in 0..8u64 {
            assert_eq!(ssb.lookup(a), None);
            ssb.store(a, a as i64 + 100);
        }
        // Wrap boundary: the last word of the memory is a valid slot.
        assert_eq!(ssb.lookup(7), Some(107));
        assert_eq!(ssb.lookup(0), Some(100));
        ssb.clear();
        for a in 0..8u64 {
            assert_eq!(ssb.lookup(a), None);
        }
    }

    #[test]
    fn epoch_wrap_resets_stale_stamps() {
        let mut ssb = Ssb::with_words(4);
        ssb.store(2, 42);
        assert_eq!(ssb.lookup(2), Some(42));
        // Pretend 2^32 - 1 epochs of clears happened since that store.
        ssb.force_epoch(u32::MAX);
        ssb.store(1, 7);
        assert_eq!(ssb.lookup(1), Some(7));
        ssb.clear(); // wraps: hard reset, epoch restarts at 1
        assert_eq!(ssb.epoch(), 1);
        // Slot 2's ancient stamp (old epoch 1) must NOT read as live even
        // though the current epoch is 1 again.
        assert_eq!(ssb.lookup(2), None);
        assert_eq!(ssb.lookup(1), None);
        // And the buffer still works after the wrap.
        ssb.store(3, 9);
        assert_eq!(ssb.lookup(3), Some(9));
        assert!(ssb.contains(3));
    }
}
