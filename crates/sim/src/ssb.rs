//! Speculative store buffer (SSB) and the speculative memory view.
//!
//! All stores by the speculative thread land in the SSB; speculative loads
//! first look up the SSB and only go to the shared cache/memory when no
//! matching store exists (§3, "Speculative Store Buffer"). On fast commit
//! the buffered stores are written back in program order; on kill or replay
//! they are discarded (replay re-executes stores against architectural
//! memory directly).

use spt_interp::{MemView, Memory};
use std::collections::HashMap;

/// The speculative store buffer.
#[derive(Default, Debug)]
pub struct Ssb {
    map: HashMap<u64, i64>,
    /// Program-order log for write-back.
    log: Vec<(u64, i64)>,
}

impl Ssb {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn store(&mut self, addr: u64, val: i64) {
        self.map.insert(addr, val);
        self.log.push((addr, val));
    }

    /// Latest speculative value for `addr`, if any (store-to-load
    /// forwarding).
    pub fn lookup(&self, addr: u64) -> Option<i64> {
        self.map.get(&addr).copied()
    }

    pub fn contains(&self, addr: u64) -> bool {
        self.map.contains_key(&addr)
    }

    /// Number of buffered stores (dynamic, incl. overwrites).
    pub fn len(&self) -> usize {
        self.log.len()
    }

    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Addresses of all outstanding stores, in program order (with
    /// duplicates). The N-core fabric checks these against downstream
    /// threads' load-address buffers when a thread's stores commit.
    pub fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.log.iter().map(|&(a, _)| a)
    }

    /// Write all outstanding stores back to memory in program order.
    pub fn drain_to(&mut self, mem: &mut Memory) {
        for &(addr, val) in &self.log {
            MemView::store(mem, addr, val);
        }
        self.clear();
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.log.clear();
    }
}

/// The speculative pipeline's view of memory: SSB overlay on architectural
/// memory. Loads forward from the SSB when possible; stores never reach
/// architectural state.
pub struct SpecMem<'a> {
    pub ssb: &'a mut Ssb,
    pub base: &'a mut Memory,
}

impl MemView for SpecMem<'_> {
    fn load(&mut self, addr: u64) -> i64 {
        match self.ssb.lookup(addr) {
            Some(v) => v,
            None => self.base.load(addr),
        }
    }

    fn store(&mut self, addr: u64, val: i64) {
        self.ssb.store(addr, val);
    }

    fn words(&self) -> usize {
        self.base.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_to_load_forwarding() {
        let mut ssb = Ssb::new();
        let mut mem = Memory::new(8);
        mem.poke(3, 10);
        let mut view = SpecMem {
            ssb: &mut ssb,
            base: &mut mem,
        };
        assert_eq!(view.load(3), 10); // falls through to base
        view.store(3, 99);
        assert_eq!(view.load(3), 99); // forwarded
        let _ = view;
        assert_eq!(mem.peek(3), 10); // architectural state untouched
    }

    #[test]
    fn latest_store_wins() {
        let mut ssb = Ssb::new();
        ssb.store(1, 5);
        ssb.store(1, 7);
        assert_eq!(ssb.lookup(1), Some(7));
        assert_eq!(ssb.len(), 2);
    }

    #[test]
    fn drain_preserves_program_order() {
        let mut ssb = Ssb::new();
        let mut mem = Memory::new(8);
        ssb.store(2, 1);
        ssb.store(4, 2);
        ssb.store(2, 3); // overwrites the first
        ssb.drain_to(&mut mem);
        assert_eq!(mem.peek(2), 3);
        assert_eq!(mem.peek(4), 2);
        assert!(ssb.is_empty());
        assert!(!ssb.contains(2));
    }

    #[test]
    fn addrs_lists_program_order_with_duplicates() {
        let mut ssb = Ssb::new();
        ssb.store(2, 1);
        ssb.store(4, 2);
        ssb.store(2, 3);
        assert_eq!(ssb.addrs().collect::<Vec<_>>(), vec![2, 4, 2]);
    }

    #[test]
    fn clear_discards_everything() {
        let mut ssb = Ssb::new();
        ssb.store(1, 1);
        ssb.clear();
        assert!(ssb.is_empty());
        assert_eq!(ssb.lookup(1), None);
    }

    #[test]
    fn words_passes_through() {
        let mut ssb = Ssb::new();
        let mut mem = Memory::new(16);
        let view = SpecMem {
            ssb: &mut ssb,
            base: &mut mem,
        };
        assert_eq!(view.words(), 16);
    }
}
