//! The SPT dual-pipeline simulator (§3 of the paper).
//!
//! Execution model: the main pipeline always executes the main program
//! thread over architectural memory. When it executes `spt_fork`, the
//! register context is copied (1 cycle minimum) and the speculative
//! pipeline begins executing real code at the start-point over a
//! speculative store buffer. There is no register communication or
//! synchronization between the threads; all speculative results go to the
//! speculation result buffer (SRB) in program order, and the speculative
//! pipeline stalls when the SRB is full.
//!
//! When the main thread arrives at the start-point, the dependence checkers
//! run:
//!
//! * register check — live-in registers read by the speculative thread vs.
//!   registers the main thread modified after the fork point (mark-based),
//!   or whose *values* changed between fork-point and start-point
//!   (value-based, the Table 1 default);
//! * memory check — the load address buffer (LAB) vs. main-thread store
//!   addresses issued before the start-point.
//!
//! No violation → *fast commit*: the speculative register context is copied
//! back (5 cycles minimum), outstanding SSB stores are written back, and
//! the main thread resumes where the speculative thread stopped. Any
//! violation → *replay*: the main pipeline walks the SRB in program order
//! at replay width (12), committing correct results directly and
//! re-executing only misspeculated instructions; replay stops when the SRB
//! empties or a re-executed branch diverges from the recorded path, in
//! which case the speculative thread is killed and the main thread resumes
//! normal execution at that point.

use crate::engine::{CycleBreakdown, Engine};
use crate::metrics::{LoopAnnotations, LoopCycleTracker, PerLoopStats};
use crate::ssb::{SpecMem, Ssb};
use spt_interp::{Cursor, EvKind, Event, Memory};
use spt_mach::{CacheSim, CacheStats, MachineConfig, RecoveryPolicy, RegCheckPolicy};
use spt_sir::{BlockId, FuncId, Op, Program, Reg, StmtRef, Terminator};
use spt_trace::{NullSink, Pipe, StallClass, StderrSink, TraceEvent, TraceSink};
use std::collections::HashSet;

/// Result of an SPT run.
#[derive(Clone, Debug)]
pub struct SptReport {
    /// Program execution time: main-pipeline cycles.
    pub cycles: u64,
    /// Instructions retired by the main pipeline (incl. replay commits).
    pub instrs: u64,
    pub breakdown: CycleBreakdown,
    pub cache: CacheStats,
    pub forks: u64,
    /// Forks ignored because a speculative thread was already running.
    pub forks_ignored: u64,
    pub fast_commits: u64,
    pub replays: u64,
    /// `spt_kill` + safety kills (loop exits).
    pub kills: u64,
    /// Replay terminations due to control divergence.
    pub divergence_kills: u64,
    /// Speculatively executed instructions that reached a dependence check.
    pub spec_instrs_checked: u64,
    /// Speculatively executed instructions discarded by kills.
    pub spec_instrs_discarded: u64,
    /// Misspeculated instructions re-executed during replay.
    pub spec_misspec: u64,
    pub per_loop: Vec<PerLoopStats>,
    /// Main-pipeline branch predictor statistics.
    pub bp_mispredicts: u64,
    pub bp_lookups: u64,
    pub ret: Option<i64>,
    pub steps: u64,
    pub out_of_fuel: bool,
}

impl SptReport {
    /// Fraction of spawned speculative threads that fast-committed.
    pub fn fast_commit_ratio(&self) -> f64 {
        if self.forks == 0 {
            0.0
        } else {
            self.fast_commits as f64 / self.forks as f64
        }
    }

    /// Misspeculated fraction of all speculatively executed instructions.
    pub fn misspeculation_ratio(&self) -> f64 {
        let total = self.spec_instrs_checked + self.spec_instrs_discarded;
        if total == 0 {
            0.0
        } else {
            self.spec_misspec as f64 / total as f64
        }
    }

    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

/// State of the speculative pipeline while a thread is live.
struct SpecState<'p> {
    cursor: Cursor<'p>,
    ssb: Ssb,
    /// Load address buffer: speculative loads that went to cache/memory.
    lab: HashSet<u64>,
    srb: Vec<Event>,
    /// Fork-level registers read by the speculative thread before writing.
    live_in_reads: HashSet<u32>,
    /// Fork-level registers written by the speculative thread.
    spec_written: HashSet<u32>,
    /// Fork-level registers written by the main thread post-fork.
    post_fork_writes: HashSet<u32>,
    /// Memory words where a main post-fork store hit the LAB.
    violated_addrs: HashSet<u64>,
    /// Index of the frame that was live at the fork.
    fork_level: usize,
    /// `frames.len()` at fork (start-point depth).
    start_depth: usize,
    /// Fork-time snapshot of fork-level registers (value-based checking).
    fork_regs: Vec<i64>,
    /// Static position of the start-point.
    start_pos: EvKind,
    stalled: bool,
    /// Annotated loop this fork belongs to, if known.
    loop_idx: Option<usize>,
    /// Main-pipeline cycle at which the fork issued (trace attribution).
    fork_cycle: u64,
}

/// Emit a `StallTransition` when an issue attributed new idle cycles to a
/// different stall class than the last one reported for this pipeline.
pub(crate) fn note_stall(
    sink: &mut dyn TraceSink,
    pipe: Pipe,
    last: &mut Option<StallClass>,
    before: CycleBreakdown,
    after: CycleBreakdown,
    cycle: u64,
) {
    let kind = if after.dcache_stall > before.dcache_stall {
        Some(StallClass::DCache)
    } else if after.pipe_stall > before.pipe_stall {
        Some(StallClass::Pipeline)
    } else {
        None
    };
    if let Some(k) = kind {
        if *last != Some(k) {
            *last = Some(k);
            sink.emit(cycle, TraceEvent::StallTransition { pipe, kind: k });
        }
    }
}

/// The SPT machine.
pub struct SptSim<'p> {
    prog: &'p Program,
    cfg: MachineConfig,
    annots: LoopAnnotations,
}

impl<'p> SptSim<'p> {
    pub fn new(prog: &'p Program, cfg: MachineConfig, annots: LoopAnnotations) -> Self {
        SptSim { prog, cfg, annots }
    }

    /// Static position of the first thing executed in `block` of `func`.
    fn position_of(&self, func: FuncId, block: BlockId) -> EvKind {
        if self.prog.func(func).block(block).insts.is_empty() {
            EvKind::Term { func, block }
        } else {
            EvKind::Inst {
                func,
                sref: StmtRef::new(block, 0),
            }
        }
    }

    /// Precise operand registers of the statement behind an event
    /// (the event's own `srcs` are capacity-limited for timing).
    fn static_srcs(&self, ev: &Event) -> Vec<Reg> {
        match ev.kind {
            EvKind::Inst { func, sref } => {
                self.prog.func(func).inst(sref).srcs_with_guard()
            }
            EvKind::Term { func, block } => {
                match &self.prog.func(func).block(block).term {
                    Terminator::Br { cond, .. } => vec![*cond],
                    Terminator::Ret(Some(r)) => vec![*r],
                    _ => vec![],
                }
            }
        }
    }

    /// Earliest cycle the speculative thread's next instruction can issue.
    fn spec_next_ready(&self, sp: &SpecState<'_>, spec_eng: &Engine) -> u64 {
        let Some(pos) = sp.cursor.position() else {
            return u64::MAX;
        };
        let depth = (sp.cursor.depth() - 1) as u32;
        let srcs: Vec<u32> = match pos {
            EvKind::Inst { func, sref } => self
                .prog
                .func(func)
                .inst(sref)
                .srcs_with_guard()
                .iter()
                .map(|r| r.0)
                .collect(),
            EvKind::Term { func, block } => match &self.prog.func(func).block(block).term {
                Terminator::Br { cond, .. } => vec![cond.0],
                Terminator::Ret(Some(r)) => vec![r.0],
                _ => vec![],
            },
        };
        spec_eng.ready_time(depth, srcs)
    }

    /// Run the program to completion (or until `max_steps` interpreter steps
    /// across both pipelines).
    pub fn run(&self, max_steps: u64) -> SptReport {
        self.run_with_memory(max_steps).0
    }

    /// Like [`SptSim::run`], but also returns the final architectural memory
    /// image, so differential tests can compare the SPT machine's committed
    /// state against a sequential interpretation word for word.
    pub fn run_with_memory(&self, max_steps: u64) -> (SptReport, Memory) {
        // `SPT_DEBUG` routes the same structured events the trace layer sees
        // to stderr (successor of the old ad-hoc eprintln debugging).
        if std::env::var_os("SPT_DEBUG").is_some() {
            self.run_with_memory_traced(max_steps, &mut StderrSink)
        } else {
            self.run_with_memory_traced(max_steps, &mut NullSink)
        }
    }

    /// Run with a trace sink receiving one event per observable speculation
    /// action. With a disabled sink this is exactly [`SptSim::run`].
    pub fn run_traced(&self, max_steps: u64, sink: &mut dyn TraceSink) -> SptReport {
        self.run_with_memory_traced(max_steps, sink).0
    }

    /// [`SptSim::run_with_memory`] with an explicit trace sink.
    pub fn run_with_memory_traced(
        &self,
        max_steps: u64,
        sink: &mut dyn TraceSink,
    ) -> (SptReport, Memory) {
        let cfg = &self.cfg;
        let mut mem = Memory::for_program(self.prog);
        let mut cache = CacheSim::new(cfg);
        let mut main = Cursor::at_entry(self.prog);
        let mut main_eng = Engine::new(cfg);
        let mut spec_eng = Engine::new(cfg);
        let mut tracker = LoopCycleTracker::new(self.annots.clone());
        let mut spec: Option<SpecState<'p>> = None;

        let mut per_loop: Vec<PerLoopStats> = self
            .annots
            .loops
            .iter()
            .map(|l| PerLoopStats {
                id: l.id,
                ..Default::default()
            })
            .collect();

        let mut steps = 0u64;
        let mut forks = 0u64;
        let mut forks_ignored = 0u64;
        let mut fast_commits = 0u64;
        let mut replays = 0u64;
        let mut kills = 0u64;
        let mut divergence_kills = 0u64;
        let mut spec_checked = 0u64;
        let mut spec_discarded = 0u64;
        let mut spec_misspec = 0u64;
        // Trace-only state (untouched when the sink is disabled).
        let mut srb_high_water = 0usize;
        let mut main_stall: Option<StallClass> = None;
        let mut spec_stall: Option<StallClass> = None;

        'outer: while !main.is_halted() && steps < max_steps {
            // Let the speculative pipeline catch up in time. It only steps
            // when its next instruction could actually issue by now — an
            // operand still in flight leaves the pipeline stalled, not
            // running ahead of wall-clock.
            if let Some(sp) = spec.as_mut() {
                if !sp.stalled
                    && spec_eng.cycle() <= main_eng.cycle()
                    && self.spec_next_ready(sp, &spec_eng) <= main_eng.cycle()
                {
                    steps += 1;
                    let before = spec_eng.breakdown();
                    Self::step_spec(self.prog, sp, &mut spec_eng, &mut cache, &mut mem, cfg);
                    if sink.enabled() {
                        if sp.srb.len() > srb_high_water {
                            srb_high_water = sp.srb.len();
                            sink.emit(
                                spec_eng.cycle(),
                                TraceEvent::SrbHighWater {
                                    occupancy: srb_high_water,
                                },
                            );
                        }
                        note_stall(
                            sink,
                            Pipe::Spec,
                            &mut spec_stall,
                            before,
                            spec_eng.breakdown(),
                            spec_eng.cycle(),
                        );
                    }
                    continue 'outer;
                }
            }

            // Arrival at the start-point?
            if let Some(sp) = spec.as_ref() {
                if main.position() == Some(sp.start_pos) && main.depth() == sp.start_depth {
                    let sp = spec.take().expect("checked above");
                    self.check_and_recover(
                        sp,
                        &mut main,
                        &mut main_eng,
                        &spec_eng,
                        &mut cache,
                        &mut mem,
                        &mut tracker,
                        &mut per_loop,
                        &mut steps,
                        max_steps,
                        &mut fast_commits,
                        &mut replays,
                        &mut divergence_kills,
                        &mut spec_checked,
                        &mut spec_misspec,
                        sink,
                    );
                    continue 'outer;
                }
            }

            // Main pipeline executes one step.
            let Some(ev) = main.step(&mut mem) else { break };
            steps += 1;
            let before = main_eng.cycle();
            let before_bd = main_eng.breakdown();
            main_eng.issue(&ev, &mut cache, cfg);
            tracker.observe(&ev, main_eng.cycle() - before);
            if sink.enabled() {
                note_stall(
                    sink,
                    Pipe::Main,
                    &mut main_stall,
                    before_bd,
                    main_eng.breakdown(),
                    main_eng.cycle(),
                );
            }

            // Fork?
            if let Some(start) = ev.fork {
                if spec.is_none() {
                    forks += 1;
                    let func = ev.kind.func();
                    let loop_idx = self.annots.by_fork_start(func, start).or_else(|| {
                        tracker.current() // fall back to enclosing annotated loop
                    });
                    if let Some(li) = loop_idx {
                        per_loop[li].forks += 1;
                    }
                    if sink.enabled() {
                        sink.emit(
                            main_eng.cycle(),
                            TraceEvent::Fork {
                                loop_id: loop_idx,
                                func,
                                start_block: start,
                            },
                        );
                    }
                    let fork_level = main.depth() - 1;
                    let cursor = main.fork_speculative(start);
                    let fork_regs = main.regs_at(fork_level).to_vec();
                    // RF copy overhead: speculative pipeline starts after it.
                    spec_eng.advance_to(main_eng.cycle() + cfg.rf_copy_overhead);
                    spec_eng.reset_context(main_eng.cycle() + cfg.rf_copy_overhead);
                    spec = Some(SpecState {
                        cursor,
                        ssb: Ssb::new(),
                        lab: HashSet::new(),
                        srb: Vec::new(),
                        live_in_reads: HashSet::new(),
                        spec_written: HashSet::new(),
                        post_fork_writes: HashSet::new(),
                        violated_addrs: HashSet::new(),
                        fork_level,
                        start_depth: main.depth(),
                        fork_regs,
                        start_pos: self.position_of(func, start),
                        stalled: false,
                        loop_idx,
                        fork_cycle: main_eng.cycle(),
                    });
                } else {
                    forks_ignored += 1;
                    if sink.enabled() {
                        sink.emit(
                            main_eng.cycle(),
                            TraceEvent::ForkIgnored {
                                func: ev.kind.func(),
                                start_block: start,
                            },
                        );
                    }
                }
                continue 'outer;
            }

            // Kill?
            if ev.kill {
                if let Some(sp) = spec.take() {
                    kills += 1;
                    spec_discarded += sp.srb.len() as u64;
                    if let Some(li) = sp.loop_idx {
                        per_loop[li].kills += 1;
                    }
                    if sink.enabled() {
                        sink.emit(
                            main_eng.cycle(),
                            TraceEvent::Kill {
                                loop_id: sp.loop_idx,
                                fork_cycle: sp.fork_cycle,
                                srb_len: sp.srb.len(),
                            },
                        );
                    }
                }
                continue 'outer;
            }

            // Track main post-fork register writes and store-address checks.
            if let Some(sp) = spec.as_mut() {
                if let Some(dst) = ev.dst {
                    if ev.dst_depth() as usize == sp.fork_level {
                        sp.post_fork_writes.insert(dst.0);
                    }
                }
                if let Some(m) = ev.mem {
                    if m.is_store && ev.executed && sp.lab.contains(&m.addr) {
                        sp.violated_addrs.insert(m.addr);
                    }
                }
                // Safety: main left the fork frame without a kill.
                if main.depth() < sp.start_depth {
                    let sp = spec.take().expect("present");
                    kills += 1;
                    spec_discarded += sp.srb.len() as u64;
                    if let Some(li) = sp.loop_idx {
                        per_loop[li].kills += 1;
                    }
                    if sink.enabled() {
                        sink.emit(
                            main_eng.cycle(),
                            TraceEvent::Kill {
                                loop_id: sp.loop_idx,
                                fork_cycle: sp.fork_cycle,
                                srb_len: sp.srb.len(),
                            },
                        );
                    }
                }
            }
        }

        // Fold tracker cycles into per-loop stats.
        for (i, pl) in per_loop.iter_mut().enumerate() {
            pl.cycles = tracker.cycles()[i];
            pl.instrs = tracker.instrs()[i];
        }

        let report = SptReport {
            cycles: main_eng.cycle() + 1,
            instrs: main_eng.instrs(),
            breakdown: main_eng.breakdown(),
            cache: cache.stats(),
            forks,
            forks_ignored,
            fast_commits,
            replays,
            kills,
            divergence_kills,
            spec_instrs_checked: spec_checked,
            spec_instrs_discarded: spec_discarded
                + spec.map_or(0, |s| s.srb.len() as u64),
            spec_misspec,
            per_loop,
            bp_mispredicts: main_eng.bp_mispredicts(),
            bp_lookups: main_eng.bp_lookups(),
            ret: main.return_value(),
            steps,
            out_of_fuel: !main.is_halted() && steps >= max_steps,
        };
        (report, mem)
    }

    /// One speculative-pipeline step.
    fn step_spec(
        prog: &Program,
        sp: &mut SpecState<'_>,
        spec_eng: &mut Engine,
        cache: &mut CacheSim,
        mem: &mut Memory,
        cfg: &MachineConfig,
    ) {
        let mut view = SpecMem {
            ssb: &mut sp.ssb,
            base: mem,
        };
        let Some(ev) = sp.cursor.step(&mut view) else {
            sp.stalled = true;
            return;
        };

        // Precise live-in tracking at the fork level.
        if ev.depth as usize == sp.fork_level {
            let srcs: Vec<Reg> = match ev.kind {
                EvKind::Inst { func, sref } => {
                    prog.func(func).inst(sref).srcs_with_guard()
                }
                EvKind::Term { func, block } => match &prog.func(func).block(block).term {
                    Terminator::Br { cond, .. } => vec![*cond],
                    Terminator::Ret(Some(r)) => vec![*r],
                    _ => vec![],
                },
            };
            for r in srcs {
                if !sp.spec_written.contains(&r.0) {
                    sp.live_in_reads.insert(r.0);
                }
            }
        }
        if let Some(dst) = ev.dst {
            if ev.dst_depth() as usize == sp.fork_level {
                sp.spec_written.insert(dst.0);
            }
        }

        // LAB: record loads that went to cache/memory (not SSB-forwarded).
        let mut timing_ev = ev;
        if let Some(m) = ev.mem {
            if !m.is_store && ev.executed {
                if sp.ssb.contains(m.addr) {
                    // Forwarded from the store buffer: 1-cycle, no cache.
                    timing_ev.mem = None;
                } else {
                    sp.lab.insert(m.addr);
                }
            }
            if m.is_store {
                // Speculative stores do not touch the cache until commit.
                timing_ev.mem = None;
            }
        }
        spec_eng.issue(&timing_ev, cache, cfg);

        sp.srb.push(ev);
        if sp.srb.len() >= cfg.srb_entries {
            sp.stalled = true;
        }
        // Wrong-path safety: speculative thread returned out of the fork
        // frame.
        if sp.cursor.depth() <= sp.fork_level {
            sp.stalled = true;
        }
        if sp.cursor.is_halted() {
            sp.stalled = true;
        }
    }

    /// Dependence check at the start-point, then fast commit / replay /
    /// squash.
    #[allow(clippy::too_many_arguments)]
    fn check_and_recover(
        &self,
        mut sp: SpecState<'p>,
        main: &mut Cursor<'p>,
        main_eng: &mut Engine,
        spec_eng: &Engine,
        cache: &mut CacheSim,
        mem: &mut Memory,
        tracker: &mut LoopCycleTracker,
        per_loop: &mut [PerLoopStats],
        steps: &mut u64,
        max_steps: u64,
        fast_commits: &mut u64,
        replays: &mut u64,
        divergence_kills: &mut u64,
        spec_checked: &mut u64,
        spec_misspec: &mut u64,
        sink: &mut dyn TraceSink,
    ) {
        let cfg = &self.cfg;
        let check_cycle = main_eng.cycle();
        *spec_checked += sp.srb.len() as u64;
        if let Some(li) = sp.loop_idx {
            per_loop[li].spec_instrs += sp.srb.len() as u64;
        }

        // Register dependence check.
        let violated_regs: HashSet<u32> = match cfg.reg_check {
            RegCheckPolicy::MarkBased => sp
                .live_in_reads
                .intersection(&sp.post_fork_writes)
                .copied()
                .collect(),
            RegCheckPolicy::ValueBased => {
                let now = main.regs_at(sp.fork_level);
                sp.live_in_reads
                    .iter()
                    .copied()
                    .filter(|&r| sp.fork_regs[r as usize] != now[r as usize])
                    .collect()
            }
        };
        let violated = !violated_regs.is_empty() || !sp.violated_addrs.is_empty();

        if !violated && cfg.recovery != RecoveryPolicy::SrxOnly {
            // Fast commit: adopt the speculative context wholesale.
            let t = main_eng.cycle().max(spec_eng.cycle()) + cfg.fast_commit_overhead;
            let before = main_eng.cycle();
            main_eng.advance_to(t);
            main_eng.reset_context(t);
            tracker.attribute_extra(main_eng.cycle() - before);
            sp.ssb.drain_to(mem);
            // Commit the speculative context. The register copy-back is a
            // *merge* at the fork-level frame: registers the speculative
            // thread wrote take its values; registers it never wrote keep
            // the main thread's — the main thread's post-fork writes are
            // program-order earlier than the speculative code and are only
            // superseded by speculative writes (the hardware tracks
            // spec-written registers in its scoreboard for exactly this).
            let main_regs = main.regs_at(sp.fork_level).to_vec();
            main.adopt(&sp.cursor);
            if let Some(frame) = main.frames.get_mut(sp.fork_level) {
                for (r, v) in main_regs.iter().enumerate() {
                    if !sp.spec_written.contains(&(r as u32)) {
                        frame.regs[r] = *v;
                    }
                }
            }
            *fast_commits += 1;
            if let Some(li) = sp.loop_idx {
                per_loop[li].fast_commits += 1;
            }
            if sink.enabled() {
                sink.emit(
                    main_eng.cycle(),
                    TraceEvent::FastCommit {
                        loop_id: sp.loop_idx,
                        fork_cycle: sp.fork_cycle,
                        srb_len: sp.srb.len(),
                    },
                );
            }
            return;
        }

        if violated && cfg.recovery == RecoveryPolicy::Squash {
            // Trash all speculative results; main re-executes normally.
            // Tearing down the speculative thread costs the same minimum
            // thread-management overhead as any other end-of-speculation
            // action.
            main_eng.advance_to(main_eng.cycle() + cfg.fast_commit_overhead);
            if let Some(li) = sp.loop_idx {
                per_loop[li].kills += 1;
            }
            // Everything in the SRB was wasted.
            *spec_misspec += sp.srb.len() as u64;
            if let Some(li) = sp.loop_idx {
                per_loop[li].spec_misspec += sp.srb.len() as u64;
            }
            if sink.enabled() {
                sink.emit(
                    main_eng.cycle(),
                    TraceEvent::Squash {
                        loop_id: sp.loop_idx,
                        fork_cycle: sp.fork_cycle,
                        srb_len: sp.srb.len(),
                    },
                );
            }
            return;
        }

        // Replay with selective re-execution. Switching the main pipeline
        // into replay mode costs at least as much as a commit (drain +
        // speculation-buffer synchronization) — this is what makes the
        // fast-commit shortcut a shortcut.
        *replays += 1;
        if let Some(li) = sp.loop_idx {
            per_loop[li].replays += 1;
        }
        main_eng.advance_to(main_eng.cycle() + cfg.fast_commit_overhead);
        main_eng.set_width(cfg.replay_width);

        // Sorted violation lists for the trace (the sets drive recovery;
        // the trace needs a deterministic order).
        let (trace_regs, trace_addrs) = if sink.enabled() {
            let mut rs: Vec<u32> = violated_regs.iter().copied().collect();
            rs.sort_unstable();
            let mut addrs: Vec<u64> = sp.violated_addrs.iter().copied().collect();
            addrs.sort_unstable();
            (rs, addrs)
        } else {
            (Vec::new(), Vec::new())
        };
        let mut committed_n = 0usize;
        let mut reexec_n = 0usize;

        let mut updated: HashSet<(u32, u32)> = violated_regs
            .into_iter()
            .map(|r| (sp.fork_level as u32, r))
            .collect();
        let mut updated_addrs: HashSet<u64> = sp.violated_addrs.clone();

        // `processed` = SRB entries fully replayed before this iteration.
        for (processed, entry) in sp.srb.iter().enumerate() {
            if *steps >= max_steps {
                break;
            }
            // Control divergence: the correct path no longer matches the
            // speculated one — kill and resume normal execution here.
            if main.position() != Some(entry.kind) || main.is_halted() {
                *divergence_kills += 1;
                if let Some(li) = sp.loop_idx {
                    per_loop[li].kills += 1;
                }
                if sink.enabled() {
                    sink.emit(
                        main_eng.cycle(),
                        TraceEvent::DivergenceKill {
                            loop_id: sp.loop_idx,
                            committed: processed,
                        },
                    );
                }
                break;
            }
            let cev = main.step(mem).expect("not halted");
            *steps += 1;

            // Misspeculation determination (the dependence checkers of §3.2
            // plus scoreboard propagation during replay).
            let mut missp = entry.executed != cev.executed;
            if !missp && cev.executed {
                for r in self.static_srcs(&cev) {
                    if updated.contains(&(cev.depth, r.0)) {
                        missp = true;
                        break;
                    }
                }
                if let Some(m) = entry.mem {
                    if !m.is_store && updated_addrs.contains(&m.addr) {
                        missp = true;
                    }
                }
            }

            // Timing: commit correct results directly; re-execute the rest.
            let before = main_eng.cycle();
            if missp {
                main_eng.issue(&cev, cache, cfg);
                *spec_misspec += 1;
                reexec_n += 1;
                if let Some(li) = sp.loop_idx {
                    per_loop[li].spec_misspec += 1;
                }
            } else {
                main_eng.commit_slot(&cev);
                committed_n += 1;
            }
            tracker.observe(&cev, main_eng.cycle() - before);

            // Propagate "updated" marks.
            if let Some(dst) = cev.dst {
                let key = (cev.dst_depth(), dst.0);
                let converged = cfg.reg_check == RegCheckPolicy::ValueBased
                    && cev.dst_val == entry.dst_val
                    && cev.executed == entry.executed;
                if missp && !converged {
                    updated.insert(key);
                } else {
                    updated.remove(&key);
                }
            }
            if let Some(m) = cev.mem {
                if m.is_store && cev.executed {
                    let spec_val = entry.mem.filter(|em| em.is_store).map(|em| em.value);
                    if missp && spec_val != Some(m.value) {
                        updated_addrs.insert(m.addr);
                    } else {
                        updated_addrs.remove(&m.addr);
                    }
                }
            }
            // Calls: a poisoned argument poisons the callee parameter.
            if cev.is_call() {
                if let EvKind::Inst { func, sref } = cev.kind {
                    if let Op::Call { args, .. } = &self.prog.func(func).inst(sref).op {
                        for (i, a) in args.iter().enumerate() {
                            if updated.contains(&(cev.depth, a.0)) {
                                updated.insert((cev.depth + 1, i as u32));
                            }
                        }
                    }
                }
            }
        }

        main_eng.set_width(cfg.issue_width);
        if sink.enabled() {
            sink.emit(
                main_eng.cycle(),
                TraceEvent::Replay {
                    loop_id: sp.loop_idx,
                    fork_cycle: sp.fork_cycle,
                    check_cycle,
                    srb_len: sp.srb.len(),
                    committed: committed_n,
                    reexecuted: reexec_n,
                    reg_violations: trace_regs,
                    mem_violations: trace_addrs,
                },
            );
        }
        // SSB is discarded: replay wrote corrected values to memory
        // directly.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::simulate_baseline;
    use crate::metrics::LoopAnnot;
    use spt_interp::run;
    use spt_sir::{BinOp, ProgramBuilder};

    const FUEL: u64 = 5_000_000;

    /// A hand-transformed SPT loop mirroring Figure 1's shape:
    /// independent per-iteration work (on disjoint memory), induction
    /// variable advanced pre-fork -> perfectly parallel iterations.
    ///
    /// for i in 0..n { heavy(i); } with body = `work` dependent ALU ops and
    /// a store to mem[i].
    fn parallel_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, n);
        f.jmp(body);
        f.switch_to(body);
        // pre-fork: advance the induction variable for the next iteration.
        let cur = f.reg();
        f.mov(cur, i);
        f.addi(i, i, 1);
        f.spt_fork(body);
        // post-fork: serial ALU chain on `cur` then a store (all private).
        let mut acc = f.reg();
        f.mov(acc, cur);
        for _ in 0..work {
            let nx = f.reg();
            f.bin(BinOp::Add, nx, acc, acc);
            acc = nx;
        }
        f.store(acc, cur, 0);
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        f.ret(Some(i));
        let id = f.finish();
        let prog = pb.finish(id, n as usize + 4);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        (prog, annots)
    }

    /// A fully serial loop: acc = f(acc) each iteration (cross-iteration
    /// dependence read in the post-fork region -> every thread violated).
    fn serial_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let acc = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, n);
        f.const_(acc, 1);
        f.jmp(body);
        f.switch_to(body);
        f.addi(i, i, 1);
        f.spt_fork(body);
        // post-fork: serial chain through acc (cross-iteration).
        for _ in 0..work {
            let one = f.const_reg(1);
            let t = f.reg();
            f.bin(BinOp::Add, t, acc, one);
            f.mov(acc, t);
        }
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        f.ret(Some(acc));
        let id = f.finish();
        let prog = pb.finish(id, 4);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        (prog, annots)
    }

    #[test]
    fn spt_preserves_sequential_semantics_parallel_loop() {
        let (prog, annots) = parallel_loop(50, 8);
        prog.verify().unwrap();
        let (seq, seq_mem) = run(&prog, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert!(!rep.out_of_fuel);
        assert_eq!(rep.ret, seq.ret);
        // Architectural memory must match the sequential run: re-run
        // sequentially and compare a few cells.
        for a in 0..50 {
            let expect = seq_mem.peek(a);
            // The SPT sim consumed its own memory internally; validate via
            // return value + spot behaviour (stores were i*2^work).
            assert_eq!(expect, (a as i64) << 8);
        }
        assert!(rep.forks > 0);
        assert!(
            rep.fast_commit_ratio() > 0.8,
            "parallel loop should fast-commit; ratio = {}",
            rep.fast_commit_ratio()
        );
    }

    #[test]
    fn spt_speeds_up_parallel_loop() {
        let (prog, annots) = parallel_loop(200, 16);
        let base = simulate_baseline(&prog, &MachineConfig::default(), &annots, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, base.ret);
        assert!(
            (rep.cycles as f64) < 0.8 * base.cycles as f64,
            "SPT {} vs baseline {}",
            rep.cycles,
            base.cycles
        );
    }

    #[test]
    fn spt_preserves_semantics_serial_loop() {
        let (prog, annots) = serial_loop(60, 6);
        prog.verify().unwrap();
        let (seq, _) = run(&prog, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, seq.ret);
        assert_eq!(rep.ret, Some(1 + 60 * 6));
        // Serial dependence: replays dominate, not fast commits.
        assert!(rep.replays > 0);
        assert!(
            rep.fast_commit_ratio() < 0.5,
            "ratio = {}",
            rep.fast_commit_ratio()
        );
        assert!(rep.spec_misspec > 0);
    }

    #[test]
    fn serial_loop_not_much_slower_than_baseline() {
        // Selective re-execution should keep the damage bounded.
        let (prog, annots) = serial_loop(100, 6);
        let base = simulate_baseline(&prog, &MachineConfig::default(), &annots, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, base.ret);
        assert!(
            (rep.cycles as f64) < 1.6 * base.cycles as f64,
            "SPT {} vs baseline {}",
            rep.cycles,
            base.cycles
        );
    }

    #[test]
    fn kill_on_loop_exit_discards_speculation() {
        let (prog, annots) = parallel_loop(10, 4);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        // The final iteration's speculative thread runs off the loop end and
        // is killed by spt_kill (or superseded by a commit at the exit).
        assert!(rep.kills + rep.divergence_kills >= 1 || rep.forks == rep.fast_commits);
        assert!(!rep.out_of_fuel);
    }

    #[test]
    fn memory_violation_detected_and_repaired() {
        // Loop where iteration i stores to mem[i+1] and iteration i+1 loads
        // mem[i+1] early: a true cross-iteration memory dependence.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, 40);
        f.jmp(body);
        f.switch_to(body);
        let cur = f.reg();
        f.mov(cur, i);
        f.addi(i, i, 1);
        f.spt_fork(body);
        // post-fork: load mem[cur], add 1, store to mem[cur+1].
        let v = f.reg();
        f.load(v, cur, 0);
        let t = f.reg();
        let one = f.const_reg(1);
        f.bin(BinOp::Add, t, v, one);
        f.store(t, cur, 1);
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        let out = f.reg();
        let base40 = f.const_reg(40);
        f.load(out, base40, 0);
        f.ret(Some(out));
        let id = f.finish();
        let prog = pb.finish(id, 64);
        prog.verify().unwrap();
        let (seq, _) = run(&prog, FUEL);
        assert_eq!(seq.ret, Some(40)); // mem[40] = 40 after the chain
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, Some(40), "memory dependence must be honored");
        assert!(rep.replays > 0, "violations must trigger replay");
    }

    #[test]
    fn squash_policy_still_correct_but_slower_than_srx() {
        let (prog, annots) = serial_loop(80, 6);
        let mut cfg_squash = MachineConfig::default();
        cfg_squash.recovery = RecoveryPolicy::Squash;
        let rep_sq = SptSim::new(&prog, cfg_squash, annots.clone()).run(FUEL);
        let rep_srx = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        assert_eq!(rep_sq.ret, rep_srx.ret);
        assert!(
            rep_sq.cycles >= rep_srx.cycles,
            "squash {} should not beat SRX {}",
            rep_sq.cycles,
            rep_srx.cycles
        );
    }

    #[test]
    fn srx_only_policy_replays_everything() {
        let (prog, annots) = parallel_loop(30, 4);
        let mut cfg = MachineConfig::default();
        cfg.recovery = RecoveryPolicy::SrxOnly;
        let rep = SptSim::new(&prog, cfg, annots).run(FUEL);
        assert_eq!(rep.fast_commits, 0);
        assert!(rep.replays > 0);
        assert_eq!(rep.ret, Some(30));
    }

    #[test]
    fn mark_based_checking_is_more_conservative() {
        // Value-based checking forgives silent re-writes of the same value;
        // mark-based does not. Loop writes `x = 7` every iteration and the
        // spec thread reads x post-fork.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let x = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, 30);
        f.const_(x, 7);
        f.jmp(body);
        f.switch_to(body);
        f.addi(i, i, 1);
        f.spt_fork(body);
        let y = f.reg();
        f.bin(BinOp::Add, y, x, i); // reads x (live-in)
        f.store(y, i, 0);
        f.const_(x, 7); // main post-fork write, same value
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        f.ret(Some(x));
        let id = f.finish();
        let prog = pb.finish(id, 64);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        let rep_val = SptSim::new(&prog, MachineConfig::default(), annots.clone()).run(FUEL);
        let mut cfg_mark = MachineConfig::default();
        cfg_mark.reg_check = RegCheckPolicy::MarkBased;
        let rep_mark = SptSim::new(&prog, cfg_mark, annots).run(FUEL);
        assert_eq!(rep_val.ret, rep_mark.ret);
        assert!(
            rep_val.fast_commits > rep_mark.fast_commits,
            "value-based {} vs mark-based {}",
            rep_val.fast_commits,
            rep_mark.fast_commits
        );
    }

    #[test]
    fn tiny_srb_throttles_speculation() {
        let (prog, annots) = parallel_loop(50, 16);
        let mut cfg_small = MachineConfig::default();
        cfg_small.srb_entries = 8;
        let rep_small = SptSim::new(&prog, cfg_small, annots.clone()).run(FUEL);
        let rep_big = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        assert_eq!(rep_small.ret, rep_big.ret);
        assert!(
            rep_small.cycles >= rep_big.cycles,
            "small SRB {} vs default {}",
            rep_small.cycles,
            rep_big.cycles
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_fold_matches_report() {
        for (prog, annots) in [serial_loop(60, 6), parallel_loop(50, 8)] {
            let sim = SptSim::new(&prog, MachineConfig::default(), annots);
            let rep = sim.run(FUEL);
            let mut sink = spt_trace::RingBufferSink::unbounded();
            let rep_t = sim.run_traced(FUEL, &mut sink);
            // Tracing must not perturb timing or results.
            assert_eq!(rep.cycles, rep_t.cycles);
            assert_eq!(rep.instrs, rep_t.instrs);
            assert_eq!(rep.ret, rep_t.ret);
            // Folding the trace reproduces the report's counters.
            let fold = spt_trace::fold(sink.records());
            assert_eq!(fold.forks, rep.forks);
            assert_eq!(fold.forks_ignored, rep.forks_ignored);
            assert_eq!(fold.fast_commits, rep.fast_commits);
            assert_eq!(fold.replays, rep.replays);
            assert_eq!(fold.kills, rep.kills);
            assert_eq!(fold.divergence_kills, rep.divergence_kills);
        }
    }

    #[test]
    fn replay_events_name_the_violating_register() {
        let (prog, annots) = serial_loop(40, 6);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let mut sink = spt_trace::RingBufferSink::unbounded();
        let rep = sim.run_traced(FUEL, &mut sink);
        assert!(rep.replays > 0);
        let fold = spt_trace::fold(sink.records());
        let l = &fold.per_loop[0];
        assert!(
            !l.reg_violations.is_empty(),
            "serial loop's cross-iteration register must be reported"
        );
        assert!(l.replay_lengths.count > 0);
        assert!(l.srb_occupancy.count > 0);
    }

    #[test]
    fn report_ratios_well_formed() {
        let (prog, annots) = parallel_loop(40, 8);
        let rep = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        assert!(rep.fast_commit_ratio() >= 0.0 && rep.fast_commit_ratio() <= 1.0);
        assert!(rep.misspeculation_ratio() >= 0.0 && rep.misspeculation_ratio() <= 1.0);
        assert!(rep.ipc() > 0.0);
        assert_eq!(rep.per_loop.len(), 1);
        assert!(rep.per_loop[0].forks > 0);
        assert!(rep.per_loop[0].cycles > 0);
    }
}
