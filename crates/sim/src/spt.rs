//! The SPT speculation-fabric simulator (§3 of the paper, generalized to
//! N cores).
//!
//! Execution model: core 0 (the main pipeline) always executes the main
//! program thread over architectural memory. When it executes `spt_fork`,
//! the register context is copied (1 cycle minimum) and a speculative
//! pipeline begins executing real code at the start-point over a private
//! speculative store buffer. There is no register communication or
//! synchronization between the threads; all speculative results go to the
//! thread's speculation result buffer (SRB) in program order, and a
//! speculative pipeline stalls when its SRB is full.
//!
//! At N=2 this is exactly the paper's dual-pipeline machine. With more
//! cores the fabric forms a ring of successive iterations (in the style of
//! Prophet's successor cores): when the *youngest* speculative thread
//! itself executes `spt_fork` and a ring core is free, the next iteration
//! starts there speculatively; a thread that reaches its successor's
//! start-point parks rather than re-executing the successor's work. A
//! speculative fork with no free core is dropped silently, exactly as the
//! two-core machine drops it.
//!
//! When the main thread arrives at the *oldest* thread's start-point, the
//! dependence checkers run:
//!
//! * register check — live-in registers read by the speculative thread vs.
//!   registers the main thread modified after the fork point (mark-based),
//!   or whose *values* changed between fork-point and start-point
//!   (value-based, the Table 1 default);
//! * memory check — the load address buffer (LAB) vs. main-thread store
//!   addresses issued before the start-point.
//!
//! What happens next is the configured [`RecoveryPolicy`]: under the
//! default (selective re-execution with fast commit), no violation →
//! *fast commit* — the speculative register context is copied back (5
//! cycles minimum), outstanding SSB stores are written back (and checked
//! against downstream threads' LABs), and the main thread resumes where
//! the speculative thread stopped; any violation → *replay* — the main
//! pipeline walks the SRB in program order at replay width (12),
//! committing correct results directly and re-executing only misspeculated
//! instructions. A replay or squash invalidates every downstream ring
//! thread (they forked from a context the recovery just rewrote).

use crate::arena::{self, SimArena, SpecBufs};
use crate::engine::{CycleBreakdown, Engine};
use crate::metrics::{LoopAnnotations, LoopCycleTracker, PerCoreStats, PerLoopStats};
use crate::pipeline::PipelineCore;
use crate::recovery::policy_for;
use crate::specset::{AddrList, AddrMembers, DepthRegSet, RegSet};
use crate::ssb::{SpecMem, Ssb};
use spt_interp::{Cursor, DecodedProgram, EvKind, Event, Memory};
use spt_mach::{CacheSim, CacheStats, MachineConfig, RegCheckPolicy, RegFileMode};
use spt_sir::{BlockId, FuncId, Op, Program, Reg};
use spt_trace::{NullSink, Pipe, StderrSink, TraceEvent, TraceSink};

/// Result of an SPT run.

#[derive(Clone, Debug)]
pub struct SptReport {
    /// Program execution time: main-pipeline cycles.
    pub cycles: u64,
    /// Instructions retired by the main pipeline (incl. replay commits).
    pub instrs: u64,
    pub breakdown: CycleBreakdown,
    pub cache: CacheStats,
    /// Speculative threads spawned (main-thread forks plus ring forks).
    pub forks: u64,
    /// Main-thread forks ignored because speculation was already running.
    pub forks_ignored: u64,
    pub fast_commits: u64,
    pub replays: u64,
    /// `spt_kill` + safety kills (loop exits) + downstream invalidations.
    pub kills: u64,
    /// Replay terminations due to control divergence.
    pub divergence_kills: u64,
    /// Speculatively executed instructions that reached a dependence check.
    pub spec_instrs_checked: u64,
    /// Speculatively executed instructions discarded by kills.
    pub spec_instrs_discarded: u64,
    /// Misspeculated instructions re-executed during replay.
    pub spec_misspec: u64,
    pub per_loop: Vec<PerLoopStats>,
    /// Per-fabric-core statistics (length = configured core count).
    pub per_core: Vec<PerCoreStats>,
    /// Main-pipeline branch predictor statistics.
    pub bp_mispredicts: u64,
    pub bp_lookups: u64,
    pub ret: Option<i64>,
    pub steps: u64,
    pub out_of_fuel: bool,
    /// Main-thread block-superstep memo hits/misses (0 when superstepping
    /// is off or the run is traced; speculative cursors always bypass the
    /// memo — see `MachineConfig::superstep`).
    pub superstep_hits: u64,
    pub superstep_misses: u64,
}

impl SptReport {
    /// Fraction of spawned speculative threads that fast-committed.
    pub fn fast_commit_ratio(&self) -> f64 {
        if self.forks == 0 {
            0.0
        } else {
            self.fast_commits as f64 / self.forks as f64
        }
    }

    /// Misspeculated fraction of all speculatively executed instructions.
    pub fn misspeculation_ratio(&self) -> f64 {
        let total = self.spec_instrs_checked + self.spec_instrs_discarded;
        if total == 0 {
            0.0
        } else {
            self.spec_misspec as f64 / total as f64
        }
    }

    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Fraction of speculative-core instructions relative to the whole
    /// fabric (0.0 when per-core stats are absent or empty).
    pub fn spec_core_instr_share(&self) -> f64 {
        let total: u64 = self.per_core.iter().map(|c| c.instrs).sum();
        if total == 0 {
            0.0
        } else {
            let spec: u64 = self.per_core.iter().skip(1).map(|c| c.instrs).sum();
            spec as f64 / total as f64
        }
    }
}

/// State of one live speculative thread.
struct SpecState<'p> {
    cursor: Cursor<'p>,
    /// Fabric core hosting this thread (1-based; core 0 is architectural).
    core: usize,
    ssb: Ssb,
    /// Load address buffer: speculative loads that went to cache/memory.
    lab: AddrMembers,
    srb: Vec<Event>,
    /// Fork-level registers read by the speculative thread before writing.
    live_in_reads: RegSet,
    /// `(register, fork-time value)` per live-in, captured lazily at the
    /// first read: a register this thread has not yet written still holds
    /// its fork-time value in the thread's own fork-level frame, so the
    /// capture replaces the eager whole-frame snapshot the fork path used
    /// to copy. Insertion order; exactly the members of `live_in_reads`.
    live_in_vals: Vec<(u32, i64)>,
    /// Fork-level registers written by the speculative thread.
    spec_written: RegSet,
    /// Fork-level registers written by the main thread post-fork (plus,
    /// for downstream ring threads, by committed predecessors).
    post_fork_writes: RegSet,
    /// Memory words where a post-fork store hit the LAB.
    violated_addrs: AddrList,
    /// Index of the frame that was live at the fork.
    fork_level: usize,
    /// `frames.len()` at fork (start-point depth).
    start_depth: usize,
    /// Static position of the start-point.
    start_pos: EvKind,
    /// Cached earliest main-pipeline cycle this thread's next instruction
    /// could issue (`u64::MAX` once halted). Refreshed after each of the
    /// thread's own steps (nothing else moves its cursor or engine).
    /// When `gate_exact` is false this is only a *lower bound* (engine
    /// cycle / fetch gate / frame baseline, no operand walk) — still
    /// sufficient to prove ineligibility whenever it exceeds the main
    /// cycle; [`SptSim::refine_gate`] upgrades it on demand.
    gate: u64,
    gate_exact: bool,
    stalled: bool,
    /// Annotated loop this fork belongs to, if known.
    loop_idx: Option<usize>,
    /// Cycle at which the fork issued (trace attribution).
    fork_cycle: u64,
}

impl<'a> SpecState<'a> {
    /// Fork a new thread state from `parent`, recycling a finished
    /// thread's buffers from `pool` when one is available so the hot
    /// fork path reuses register files, store-buffer slots and stamp
    /// tables instead of allocating. When the within-run pool is empty,
    /// buffers retained by the arena from *previous* runs (`bufs`) are
    /// rebuilt the same way; only with both exhausted does the fork
    /// allocate.
    #[allow(clippy::too_many_arguments)]
    fn acquire(
        pool: &mut Vec<SpecState<'a>>,
        bufs: &mut Vec<SpecBufs>,
        parent: &Cursor<'a>,
        start: BlockId,
        mem_words: usize,
        core: usize,
        start_pos: EvKind,
        loop_idx: Option<usize>,
        fork_cycle: u64,
    ) -> SpecState<'a> {
        let fork_level = parent.depth() - 1;
        let start_depth = parent.depth();
        match pool.pop() {
            Some(mut st) => {
                parent.fork_speculative_into(start, &mut st.cursor);
                st.ssb.clear();
                st.lab.clear();
                st.srb.clear();
                st.live_in_reads.clear();
                st.live_in_vals.clear();
                st.spec_written.clear();
                st.post_fork_writes.clear();
                st.violated_addrs.clear();
                st.core = core;
                st.fork_level = fork_level;
                st.start_depth = start_depth;
                st.start_pos = start_pos;
                st.gate = 0;
                st.gate_exact = false;
                st.stalled = false;
                st.loop_idx = loop_idx;
                st.fork_cycle = fork_cycle;
                st
            }
            None => {
                // Cross-run reuse: rebuild a SpecState around buffers a
                // previous run retired into the arena. Every buffer is
                // cleared exactly as the pool arm clears it (the SSB
                // additionally grows to this run's memory: new slots carry
                // stamp 0, old stamps are dead behind the epoch bump, so
                // the result is observationally `Ssb::with_words`).
                let mut st = match bufs.pop() {
                    Some(b) => {
                        let mut cursor = Cursor::empty_in(parent.decoded(), b.cursor);
                        parent.fork_speculative_into(start, &mut cursor);
                        SpecState {
                            cursor,
                            core,
                            ssb: b.ssb,
                            lab: b.lab,
                            srb: b.srb,
                            live_in_reads: b.live_in_reads,
                            live_in_vals: b.live_in_vals,
                            spec_written: b.spec_written,
                            post_fork_writes: b.post_fork_writes,
                            violated_addrs: b.violated_addrs,
                            fork_level,
                            start_depth,
                            start_pos,
                            gate: 0,
                            gate_exact: false,
                            stalled: false,
                            loop_idx,
                            fork_cycle,
                        }
                    }
                    None => SpecState {
                        cursor: parent.fork_speculative(start),
                        core,
                        ssb: Ssb::new(),
                        lab: AddrMembers::new(),
                        srb: Vec::new(),
                        live_in_reads: RegSet::new(),
                        live_in_vals: Vec::new(),
                        spec_written: RegSet::new(),
                        post_fork_writes: RegSet::new(),
                        violated_addrs: AddrList::new(),
                        fork_level,
                        start_depth,
                        start_pos,
                        gate: 0,
                        gate_exact: false,
                        stalled: false,
                        loop_idx,
                        fork_cycle,
                    },
                };
                st.ssb.clear();
                st.ssb.ensure_words(mem_words);
                st.lab.clear();
                st.srb.clear();
                st.live_in_reads.clear();
                st.live_in_vals.clear();
                st.spec_written.clear();
                st.post_fork_writes.clear();
                st.violated_addrs.clear();
                st
            }
        }
    }

    /// Retire this thread's heap buffers into the arena's cross-run pool.
    fn into_bufs(self) -> SpecBufs {
        SpecBufs {
            cursor: self.cursor.into_parts(),
            ssb: self.ssb,
            lab: self.lab,
            srb: self.srb,
            live_in_reads: self.live_in_reads,
            live_in_vals: self.live_in_vals,
            spec_written: self.spec_written,
            post_fork_writes: self.post_fork_writes,
            violated_addrs: self.violated_addrs,
        }
    }
}

/// What a fast commit leaves behind for downstream ring threads. Owned by
/// the run as a scratch buffer and refilled per commit, so the steady
/// state performs no per-commit allocation.
#[derive(Default)]
struct CommitEffects {
    /// Word addresses the committed thread's SSB wrote back.
    drained_addrs: Vec<u64>,
    /// Fork-level registers the committed thread (or the main thread
    /// during its lifetime) wrote — mark-based checking treats these as
    /// post-fork writes for every downstream thread.
    written: Vec<u32>,
}

/// Outcome of a dependence check, as seen by downstream ring threads.
enum Recovered {
    /// The thread's context was adopted; downstream threads stay live.
    /// The payload says whether the caller's [`CommitEffects`] scratch
    /// was (re)filled for downstream consumption.
    FastCommit(bool),
    /// Replay, squash, or divergence kill: the architectural state was
    /// rewritten, so every downstream thread is invalid.
    Rollback,
}

/// Discard every live speculative thread (oldest first), attributing a
/// kill to each.
#[allow(clippy::too_many_arguments)]
fn kill_all_threads<'a>(
    spec: &mut Vec<SpecState<'a>>,
    pool: &mut Vec<SpecState<'a>>,
    cycle: u64,
    kills: &mut u64,
    spec_discarded: &mut u64,
    per_loop: &mut [PerLoopStats],
    per_core: &mut [PerCoreStats],
    sink: &mut dyn TraceSink,
) {
    for sp in spec.drain(..) {
        *kills += 1;
        *spec_discarded += sp.srb.len() as u64;
        if let Some(li) = sp.loop_idx {
            per_loop[li].kills += 1;
        }
        per_core[sp.core].kills += 1;
        if sink.enabled() {
            sink.emit(
                cycle,
                TraceEvent::Kill {
                    loop_id: sp.loop_idx,
                    fork_cycle: sp.fork_cycle,
                    srb_len: sp.srb.len(),
                },
            );
        }
        pool.push(sp);
    }
}

/// The SPT machine.
pub struct SptSim<'p> {
    prog: &'p Program,
    /// Pre-decoded instruction streams — the form the hot loops execute.
    dec: DecodedProgram,
    cfg: MachineConfig,
    annots: LoopAnnotations,
}

impl<'p> SptSim<'p> {
    pub fn new(prog: &'p Program, cfg: MachineConfig, annots: LoopAnnotations) -> Self {
        SptSim {
            prog,
            dec: DecodedProgram::new(prog),
            cfg,
            annots,
        }
    }

    /// [`SptSim::new`] reusing a decoded program the arena retained under
    /// fingerprint `fp` (the cores ∈ {2,4,8} runs of one benchmark share
    /// one decode). Return the decode with [`SptSim::into_decoded`] +
    /// [`SimArena::put_decoded`] when done.
    pub fn new_in(
        arena: &mut SimArena,
        fp: u64,
        prog: &'p Program,
        cfg: MachineConfig,
        annots: LoopAnnotations,
    ) -> Self {
        let dec = arena
            .take_decoded(fp)
            .unwrap_or_else(|| DecodedProgram::new(prog));
        SptSim {
            prog,
            dec,
            cfg,
            annots,
        }
    }

    /// Surrender the decoded program (for [`SimArena::put_decoded`]).
    pub fn into_decoded(self) -> DecodedProgram {
        self.dec
    }

    /// Static position of the first thing executed in `block` of `func`.
    fn position_of(&self, func: FuncId, block: BlockId) -> EvKind {
        self.dec.position_of(func, block)
    }

    /// Precise operand registers of the statement behind an event
    /// (the event's own `srcs` are capacity-limited for timing).
    fn static_srcs(&self, ev: &Event) -> &[Reg] {
        self.dec.srcs_of(ev.kind)
    }

    /// Recompute a thread's cached gate: the earliest cycle its next
    /// instruction could issue on its own engine (`ready_time` is ≥ the
    /// engine's cycle, so one cached value subsumes the old `eng.cycle()
    /// ≤ main && ready ≤ main` pair). Only this thread's own steps change
    /// it — each thread owns its core's engine — so this runs once per
    /// step instead of once per scheduler scan.
    ///
    /// The gate is computed lazily against `by` (the frozen main cycle):
    /// a speculative pipeline usually runs *ahead* of the main one, and
    /// then [`Engine::ready_floor`] alone already exceeds `by` — the
    /// operand walk (`srcs_of` + per-register scoreboard reads) is skipped
    /// and the floor is stored as an inexact lower bound. Scans that later
    /// see the bound at or below their main cycle refine it first via
    /// [`SptSim::refine_gate`], so eligibility decisions are unchanged.
    fn refresh_gate(dec: &DecodedProgram, sp: &mut SpecState<'_>, eng: &Engine, by: u64) {
        if sp.cursor.is_halted() {
            sp.gate = u64::MAX;
            sp.gate_exact = true;
            return;
        }
        let depth = (sp.cursor.depth() - 1) as u32;
        let floor = eng.ready_floor(depth);
        if floor > by {
            sp.gate = floor;
            sp.gate_exact = false;
        } else if eng.ready_bound(depth) <= by {
            // Every register of the frame is provably ready by `by`, so
            // the exact gate is ≤ `by` too: the thread stays eligible
            // without the operand walk. The floor stands in as the usual
            // inexact lower bound; the next scan refines it before
            // trusting the value.
            sp.gate = floor;
            sp.gate_exact = false;
        } else {
            let pos = sp
                .cursor
                .position()
                .expect("unhalted cursor has a position");
            sp.gate = eng.ready_time(depth, dec.srcs_of(pos).iter().map(|r| r.0));
            sp.gate_exact = true;
        }
    }

    /// Upgrade a lazily-computed gate lower bound to the exact issue
    /// cycle. A no-op once exact; exactness persists until the thread's
    /// next own step (nothing else moves its engine or cursor).
    fn refine_gate(dec: &DecodedProgram, sp: &mut SpecState<'_>, eng: &Engine) {
        if !sp.gate_exact {
            if let Some(pos) = sp.cursor.position() {
                let depth = (sp.cursor.depth() - 1) as u32;
                sp.gate = eng.ready_time(depth, dec.srcs_of(pos).iter().map(|r| r.0));
            }
            sp.gate_exact = true;
        }
    }

    /// Run the program to completion (or until `max_steps` interpreter steps
    /// across all pipelines).
    pub fn run(&self, max_steps: u64) -> SptReport {
        self.run_with_memory(max_steps).0
    }

    /// Like [`SptSim::run`], but also returns the final architectural memory
    /// image, so differential tests can compare the SPT machine's committed
    /// state against a sequential interpretation word for word.
    pub fn run_with_memory(&self, max_steps: u64) -> (SptReport, Memory) {
        // `SPT_DEBUG` routes the same structured events the trace layer sees
        // to stderr (successor of the old ad-hoc eprintln debugging).
        if std::env::var_os("SPT_DEBUG").is_some() {
            self.run_with_memory_traced(max_steps, &mut StderrSink)
        } else {
            self.run_with_memory_traced(max_steps, &mut NullSink)
        }
    }

    /// Run with a trace sink receiving one event per observable speculation
    /// action. With a disabled sink this is exactly [`SptSim::run`].
    pub fn run_traced(&self, max_steps: u64, sink: &mut dyn TraceSink) -> SptReport {
        self.run_with_memory_traced(max_steps, sink).0
    }

    /// [`SptSim::run_with_memory`] with an explicit trace sink. Routes
    /// through the thread-local [`SimArena`] when `SPT_ARENA` is on (the
    /// default), or a brand-new arena per run when off — both execute
    /// [`SptSim::run_core`], so the two modes share every instruction of
    /// the simulation path.
    pub fn run_with_memory_traced(
        &self,
        max_steps: u64,
        sink: &mut dyn TraceSink,
    ) -> (SptReport, Memory) {
        if arena::arena_enabled() {
            arena::with_thread_arena(|a| self.run_core(a, max_steps, sink))
        } else {
            self.run_core(&mut SimArena::new(), max_steps, sink)
        }
    }

    /// Run with an explicit arena, retiring every reusable component
    /// (including the final memory image) back into it. The sweep's
    /// per-worker hot path.
    pub fn run_in(&self, arena: &mut SimArena, max_steps: u64) -> SptReport {
        let (report, mem) = if std::env::var_os("SPT_DEBUG").is_some() {
            self.run_core(arena, max_steps, &mut StderrSink)
        } else {
            self.run_core(arena, max_steps, &mut NullSink)
        };
        arena.put_mem(mem);
        report
    }

    /// [`SptSim::run_in`] with an explicit trace sink, for tests that
    /// compare the full event stream of warm-arena runs against fresh
    /// construction byte for byte.
    pub fn run_traced_in(
        &self,
        arena: &mut SimArena,
        max_steps: u64,
        sink: &mut dyn TraceSink,
    ) -> SptReport {
        let (report, mem) = self.run_core(arena, max_steps, sink);
        arena.put_mem(mem);
        report
    }

    /// The simulation loop proper: check every heap component out of
    /// `arena` (reset-or-fresh), run, retire the components back. The
    /// returned memory is *not* retired — callers that don't need it use
    /// [`SptSim::run_in`].
    fn run_core(
        &self,
        arena: &mut SimArena,
        max_steps: u64,
        sink: &mut dyn TraceSink,
    ) -> (SptReport, Memory) {
        let cfg = &self.cfg;
        let cores = cfg.cores.max(2);
        let mut mem = arena.take_mem(self.prog);
        let mut cache = arena.take_cache(cfg);
        let mut main = Cursor::at_entry_in(&self.dec, arena.take_cursor_parts());
        let mut main_core = arena.take_core(cfg, Pipe::Main);
        // Speculative cores are created once and reused across threads:
        // `advance_to` + `reset_context` at each spawn model the RF copy,
        // while the engine keeps accumulating its per-core statistics.
        let mut spec_cores: Vec<PipelineCore> = (1..cores)
            .map(|_| arena.take_core(cfg, Pipe::Spec))
            .collect();
        let mut tracker = LoopCycleTracker::new(&self.annots);
        // Live speculative threads, oldest (next to be checked) first.
        let mut spec: Vec<SpecState<'_>> = Vec::new();
        // Finished thread states, retained so forks reuse their buffers.
        let mut pool: Vec<SpecState<'_>> = Vec::new();
        // Thread buffers retained by the arena from previous runs, drawn
        // on when `pool` is empty.
        let mut bufs = arena.take_spec_bufs_pool();
        // Per-commit effects scratch, recycled across every fast commit
        // of the run.
        let mut fx = CommitEffects::default();

        let mut per_loop: Vec<PerLoopStats> = self
            .annots
            .loops
            .iter()
            .map(|l| PerLoopStats {
                id: l.id,
                ..Default::default()
            })
            .collect();
        let mut per_core: Vec<PerCoreStats> = (0..cores)
            .map(|c| PerCoreStats {
                core: c,
                ..Default::default()
            })
            .collect();

        // Superstepping: main-thread-only (speculative cursors bypass the
        // memo entirely), bypassed on traced runs so the trace layer sees
        // the interpreter's native path. Bit-identical by construction.
        let mut memo = (cfg.superstep && !sink.enabled())
            .then(|| arena.take_memo(self.dec.n_flat_blocks() as usize));
        let mut steps = 0u64;
        let mut forks = 0u64;
        let mut forks_ignored = 0u64;
        let mut fast_commits = 0u64;
        let mut replays = 0u64;
        let mut kills = 0u64;
        let mut divergence_kills = 0u64;
        let mut spec_checked = 0u64;
        let mut spec_discarded = 0u64;
        let mut spec_misspec = 0u64;
        // Trace-only state (untouched when the sink is disabled).
        let mut srb_high_water = 0usize;
        // A sink's enabled-ness never changes mid-run: hoist it so the
        // per-step paths branch on a local instead of a virtual call.
        let traced = sink.enabled();
        // Count of leading ring threads known parked (see the scan below).
        let mut lead = 0usize;

        'outer: while !main.is_halted() && steps < max_steps {
            // Let the speculative pipelines catch up in time, oldest thread
            // first. A thread only steps when its next instruction could
            // actually issue by now — an operand still in flight leaves the
            // pipeline stalled, not running ahead of wall-clock.
            let main_cycle = main_core.engine.cycle();
            // A parked thread stays parked until it leaves the ring
            // (arrival commit or kill), so the scan can remember how many
            // leading threads are stalled and start past them; `lead` is
            // rolled back by one on `spec.remove(0)` and to zero on a
            // ring-wide kill.
            while lead < spec.len() && spec[lead].stalled {
                lead += 1;
            }
            let mut step_idx = None;
            for (i, sp) in spec.iter_mut().enumerate().skip(lead) {
                // No park check here: a thread can only reach its
                // successor's start-point by stepping, and the batch loop
                // checks after every step (the successor's identity is
                // fixed at its fork, which the same batch also covers), so
                // the scan would never see an unparked thread at it.
                if !sp.stalled && sp.gate <= main_cycle {
                    // A lazily-bounded gate at or below the main cycle
                    // proves nothing yet. The frame-level readiness bound
                    // usually settles it without the operand walk: when
                    // every register of the frame is ready by the main
                    // cycle, so is the next instruction's operand set (the
                    // gate stays an inexact lower bound). Otherwise refine
                    // to the exact issue cycle before committing.
                    let eng = &spec_cores[sp.core - 1].engine;
                    let eligible = sp.gate_exact
                        || eng.ready_bound((sp.cursor.depth() - 1) as u32) <= main_cycle
                        || {
                            Self::refine_gate(&self.dec, sp, eng);
                            sp.gate <= main_cycle
                        };
                    if eligible {
                        step_idx = Some(i);
                        break;
                    }
                }
            }
            if let Some(i) = step_idx {
                // Batch: keep stepping thread `i` while it stays eligible.
                // Every thread before `i` was ineligible at scan time and
                // stays so while only `i` steps (each thread owns its
                // core's engine, successors' start-points are static and
                // the main pipeline is idle here), so re-scanning the
                // prefix between steps is pure overhead; only `i`'s own
                // park/stall/gate conditions can change.
                loop {
                    steps += 1;
                    let sp = &mut spec[i];
                    let core = &mut spec_cores[sp.core - 1];
                    let fork_req =
                        Self::step_spec(&self.dec, sp, core, &mut cache, &mut mem, cfg, traced);
                    if traced {
                        if sp.srb.len() > srb_high_water {
                            srb_high_water = sp.srb.len();
                            sink.emit(
                                core.engine.cycle(),
                                TraceEvent::SrbHighWater {
                                    occupancy: srb_high_water,
                                },
                            );
                        }
                        core.note_stall(sink);
                    }
                    Self::refresh_gate(&self.dec, sp, &core.engine, main_cycle);
                    // A speculative thread's own `spt_fork`: the youngest
                    // thread spawns the next iteration on a free ring core;
                    // with no free core (always, at N=2) it is dropped
                    // silently.
                    if let Some((func, start)) = fork_req {
                        if i + 1 == spec.len() && spec.len() + 1 < cores {
                            let free = (1..cores)
                                .find(|c| !spec.iter().any(|s| s.core == *c))
                                .expect("thread count below cores-1 implies a free core");
                            forks += 1;
                            let parent = &spec[i];
                            let loop_idx =
                                self.annots.by_fork_start(func, start).or(parent.loop_idx);
                            if let Some(li) = loop_idx {
                                per_loop[li].forks += 1;
                            }
                            let parent_cycle = spec_cores[parent.core - 1].engine.cycle();
                            if sink.enabled() {
                                sink.emit(
                                    parent_cycle,
                                    TraceEvent::RingFork {
                                        loop_id: loop_idx,
                                        core: free,
                                        func,
                                        start_block: start,
                                    },
                                );
                            }
                            let t = parent_cycle + cfg.rf_copy_overhead;
                            let succ = &mut spec_cores[free - 1].engine;
                            succ.advance_to(t);
                            succ.reset_context(t);
                            per_core[free].threads += 1;
                            let mut st = SpecState::acquire(
                                &mut pool,
                                &mut bufs,
                                &spec[i].cursor,
                                start,
                                mem.len(),
                                free,
                                self.position_of(func, start),
                                loop_idx,
                                parent_cycle,
                            );
                            // Rebase the parent's fork-level dirty mask to
                            // this fork instant: the mask reaches the main
                            // cursor through this thread's commit adopt,
                            // where the new thread's value check consumes
                            // it (a clear bit proves the register still
                            // holds the value the new thread will lazily
                            // capture at first read).
                            spec[i].cursor.clear_dirty_at(st.fork_level);
                            Self::refresh_gate(
                                &self.dec,
                                &mut st,
                                &spec_cores[free - 1].engine,
                                main_cycle,
                            );
                            spec.push(st);
                        }
                    }
                    if steps >= max_steps {
                        break;
                    }
                    // Park check: the thread reached its successor's
                    // start-point, so hold it rather than re-execute the
                    // successor's iteration. Raw frame fields suffice —
                    // `start_pos` always points at the first event of its
                    // block (`position_of`), which is what
                    // `at_block_start` tests — and stepping is the only
                    // way to get here, so checking after every step
                    // covers every park transition.
                    if i + 1 < spec.len() {
                        let nxt = &spec[i + 1];
                        if spec[i].cursor.depth() == nxt.start_depth
                            && spec[i]
                                .cursor
                                .at_block_start(nxt.start_pos.func(), nxt.start_pos.block())
                        {
                            spec[i].stalled = true;
                        }
                    }
                    let sp = &spec[i];
                    if sp.stalled || sp.gate > main_cycle {
                        break;
                    }
                }
                continue 'outer;
            }

            // No speculative thread can become eligible before `next_gate`:
            // gates, stall flags and park inputs change only when a
            // speculative thread steps, and none steps while the main
            // pipeline runs. Batch main-pipeline steps until that cycle so
            // the ring is not rescanned between every event. Inexact gates
            // are lower bounds of the true issue cycle, so the minimum is
            // still a sound batching horizon (worst case: an early rescan
            // that refines them). Fork, kill and arrival exits below
            // restore the full scheduling loop.
            let next_gate = spec[lead..]
                .iter()
                .filter(|s| !s.stalled)
                .map(|s| s.gate)
                .min()
                .unwrap_or(u64::MAX);
            // The oldest thread's start-point is static for the whole inner
            // loop (every path that mutates `spec` exits via `continue
            // 'outer`), so hoist its components and let the per-event
            // arrival check be three field compares instead of an `EvKind`
            // construction. `start_pos` always points at the first event of
            // its block (`position_of`), which is what `at_block_start`
            // tests.
            let arrive = spec
                .first()
                .map(|s| (s.start_pos.func(), s.start_pos.block(), s.start_depth));
            loop {
                // Arrival at the oldest thread's start-point?
                if let Some((af, ab, ad)) = arrive {
                    if main.at_block_start(af, ab) && main.depth() == ad {
                        let sp = spec.remove(0);
                        lead = lead.saturating_sub(1);
                        let spec_core_idx = sp.core - 1;
                        let outcome = self.check_and_recover(
                            sp,
                            &mut pool,
                            &mut main,
                            &mut main_core,
                            &spec_cores[spec_core_idx].engine,
                            &mut cache,
                            &mut mem,
                            &mut tracker,
                            &mut per_loop,
                            &mut per_core,
                            &mut steps,
                            max_steps,
                            &mut fast_commits,
                            &mut replays,
                            &mut divergence_kills,
                            &mut spec_checked,
                            &mut spec_misspec,
                            !spec.is_empty(),
                            &mut fx,
                            sink,
                        );
                        match outcome {
                            Recovered::FastCommit(has_effects) => {
                                if has_effects {
                                    // The committed thread's stores just became
                                    // architectural: any downstream thread that
                                    // speculatively loaded one of those words read
                                    // a stale value.
                                    for sp2 in spec.iter_mut() {
                                        for &a in &fx.drained_addrs {
                                            if sp2.lab.contains(a) {
                                                sp2.violated_addrs.insert(a);
                                            }
                                        }
                                        if cfg.reg_check == RegCheckPolicy::MarkBased {
                                            // Conservative: every register the
                                            // committed thread wrote counts as a
                                            // post-fork write for its successors.
                                            sp2.post_fork_writes.extend_from_slice(&fx.written);
                                        }
                                    }
                                }
                            }
                            Recovered::Rollback => {
                                kill_all_threads(
                                    &mut spec,
                                    &mut pool,
                                    main_core.engine.cycle(),
                                    &mut kills,
                                    &mut spec_discarded,
                                    &mut per_loop,
                                    &mut per_core,
                                    sink,
                                );
                                lead = 0;
                            }
                        }
                        continue 'outer;
                    }
                }

                // Main pipeline: with no live speculative threads there is no
                // arrival/park/post-fork bookkeeping to interleave, so whole
                // memoized blocks can be superstepped (memo blocks contain no
                // fork/kill/call/ret by classification). `memo_candidate`
                // screens out the common no-fast-path probes (mid-block or
                // unmemoizable positions) before the call.
                if spec.is_empty() && main.memo_candidate() {
                    if let Some(memo) = memo.as_mut() {
                        // The memo only exists on untraced runs: quiet issue.
                        let n = main.superstep(&mut mem, memo, max_steps - steps, &mut |ev| {
                            main_core.step_issue_quiet(ev, &mut cache, cfg, &mut tracker);
                        });
                        if n > 0 {
                            steps += n;
                            continue 'outer;
                        }
                    }
                }

                // Main pipeline executes one step.
                let Some(ev) = main.step(&mut mem) else {
                    break 'outer;
                };
                steps += 1;
                if traced {
                    main_core.step_issue(&ev, &mut cache, cfg, &mut tracker, sink);
                } else {
                    main_core.step_issue_quiet(&ev, &mut cache, cfg, &mut tracker);
                }

                // Fork?
                if let Some(start) = ev.fork {
                    if spec.is_empty() {
                        forks += 1;
                        let func = ev.kind.func();
                        let loop_idx = self.annots.by_fork_start(func, start).or_else(|| {
                            tracker.current() // fall back to enclosing annotated loop
                        });
                        if let Some(li) = loop_idx {
                            per_loop[li].forks += 1;
                        }
                        if sink.enabled() {
                            sink.emit(
                                main_core.engine.cycle(),
                                TraceEvent::Fork {
                                    loop_id: loop_idx,
                                    func,
                                    start_block: start,
                                },
                            );
                        }
                        // All ring cores are free: the thread goes to core 1.
                        // RF copy overhead: the pipeline starts after it.
                        let t = main_core.engine.cycle() + cfg.rf_copy_overhead;
                        spec_cores[0].engine.advance_to(t);
                        spec_cores[0].engine.reset_context(t);
                        per_core[1].threads += 1;
                        let mut st = SpecState::acquire(
                            &mut pool,
                            &mut bufs,
                            &main,
                            start,
                            mem.len(),
                            1,
                            self.position_of(func, start),
                            loop_idx,
                            main_core.engine.cycle(),
                        );
                        // Rebase main's fork-level dirty mask to the fork
                        // instant: from here on a clear bit proves the
                        // register still holds its fork-time value, which
                        // is exactly what the dirty-filtered value check
                        // relies on.
                        main.clear_dirty_at(st.fork_level);
                        Self::refresh_gate(
                            &self.dec,
                            &mut st,
                            &spec_cores[0].engine,
                            main_core.engine.cycle(),
                        );
                        spec.push(st);
                    } else {
                        forks_ignored += 1;
                        if sink.enabled() {
                            sink.emit(
                                main_core.engine.cycle(),
                                TraceEvent::ForkIgnored {
                                    func: ev.kind.func(),
                                    start_block: start,
                                },
                            );
                        }
                    }
                    continue 'outer;
                }

                // Kill?
                if ev.kill {
                    kill_all_threads(
                        &mut spec,
                        &mut pool,
                        main_core.engine.cycle(),
                        &mut kills,
                        &mut spec_discarded,
                        &mut per_loop,
                        &mut per_core,
                        sink,
                    );
                    lead = 0;
                    continue 'outer;
                }

                // Track main post-fork register writes and store-address checks
                // against every live thread. Most events are neither an
                // executed store nor (under the mark-based policy) a register
                // write, so screen once before walking the ring.
                if !spec.is_empty() {
                    let store = matches!(ev.mem, Some(m) if m.is_store && ev.executed);
                    let mark_write = cfg.reg_check == RegCheckPolicy::MarkBased && ev.dst.is_some();
                    if store || mark_write {
                        for sp in spec.iter_mut() {
                            // Post-fork write marks feed only the mark-based
                            // register check; the value-based check reads the
                            // cursor's dirty masks and the thread's lazily
                            // captured fork values instead.
                            if mark_write {
                                if let Some(dst) = ev.dst {
                                    if ev.dst_depth() as usize == sp.fork_level {
                                        sp.post_fork_writes.insert(dst.0);
                                    }
                                }
                            }
                            if let Some(m) = ev.mem {
                                if m.is_store && ev.executed && sp.lab.contains(m.addr) {
                                    sp.violated_addrs.insert(m.addr);
                                }
                            }
                        }
                    }
                    // Safety: main left the fork frame without a kill. All ring
                    // threads speculate iterations of the same loop frame, so
                    // all of them are dead.
                    if main.depth() < spec[0].start_depth {
                        kill_all_threads(
                            &mut spec,
                            &mut pool,
                            main_core.engine.cycle(),
                            &mut kills,
                            &mut spec_discarded,
                            &mut per_loop,
                            &mut per_core,
                            sink,
                        );
                        lead = 0;
                        continue 'outer;
                    }
                }
                if steps >= max_steps || main_core.engine.cycle() >= next_gate {
                    continue 'outer;
                }
            }
        }

        // Fold tracker cycles into per-loop stats.
        tracker.fold_into(&mut per_loop);
        per_core[0].instrs = main_core.engine.instrs();
        for (i, core) in spec_cores.iter().enumerate() {
            per_core[i + 1].instrs = core.engine.instrs();
        }

        let report = SptReport {
            cycles: main_core.engine.cycle() + 1,
            instrs: main_core.engine.instrs(),
            breakdown: main_core.engine.breakdown(),
            cache: cache.stats(),
            forks,
            forks_ignored,
            fast_commits,
            replays,
            kills,
            divergence_kills,
            spec_instrs_checked: spec_checked,
            spec_instrs_discarded: spec_discarded
                + spec.iter().map(|s| s.srb.len() as u64).sum::<u64>(),
            spec_misspec,
            per_loop,
            per_core,
            bp_mispredicts: main_core.engine.bp_mispredicts(),
            bp_lookups: main_core.engine.bp_lookups(),
            ret: main.return_value(),
            steps,
            out_of_fuel: !main.is_halted() && steps >= max_steps,
            superstep_hits: memo.as_ref().map_or(0, |m| m.hits()),
            superstep_misses: memo.as_ref().map_or(0, |m| m.misses()),
        };

        // Retire every reusable component into the arena (memory goes back
        // via `run_in`; traced callers keep it).
        for sp in spec.drain(..) {
            bufs.push(sp.into_bufs());
        }
        for sp in pool.drain(..) {
            bufs.push(sp.into_bufs());
        }
        arena.put_spec_bufs_pool(bufs);
        arena.put_cursor_parts(main.into_parts());
        arena.put_core(main_core);
        for c in spec_cores {
            arena.put_core(c);
        }
        arena.put_cache(cache);
        if let Some(m) = memo {
            arena.put_memo(m);
        }
        arena.publish_retained();
        (report, mem)
    }

    /// One speculative-pipeline step. Returns the fork request (`spt_fork`
    /// function and start block) if this step executed one.
    fn step_spec(
        dec: &DecodedProgram,
        sp: &mut SpecState<'_>,
        core: &mut PipelineCore,
        cache: &mut CacheSim,
        mem: &mut Memory,
        cfg: &MachineConfig,
        traced: bool,
    ) -> Option<(FuncId, BlockId)> {
        let mut view = SpecMem {
            ssb: &mut sp.ssb,
            base: mem,
        };
        let Some(ev) = sp.cursor.step(&mut view) else {
            sp.stalled = true;
            return None;
        };

        // Precise live-in tracking at the fork level, with lazy fork-value
        // capture: a register this thread has not yet written still holds
        // its fork-time value in its own fork-level frame (nothing else
        // writes a speculative cursor), so recording the value at first
        // read reconstructs the fork-time snapshot without a per-fork
        // whole-frame copy.
        if ev.depth as usize == sp.fork_level {
            if sp.cursor.depth() > sp.fork_level {
                for r in dec.srcs_of(ev.kind) {
                    if !sp.spec_written.contains(r.0) && !sp.live_in_reads.contains(r.0) {
                        sp.live_in_reads.insert(r.0);
                        let v = if ev.executed && ev.dst == Some(*r) {
                            // This statement overwrote the register it read
                            // (e.g. `i = i + 1`): the fork-time value is
                            // the one the write displaced.
                            sp.cursor.last_overwritten()
                        } else {
                            sp.cursor.regs_at(sp.fork_level)[r.index()]
                        };
                        sp.live_in_vals.push((r.0, v));
                    }
                }
            } else {
                // A `ret` popped the fork frame before the operand could
                // be read back; the only register a `ret` reads is the
                // returned one, which the cursor preserves.
                for r in dec.srcs_of(ev.kind) {
                    if !sp.spec_written.contains(r.0) && !sp.live_in_reads.contains(r.0) {
                        sp.live_in_reads.insert(r.0);
                        sp.live_in_vals.push((r.0, sp.cursor.last_ret_read()));
                    }
                }
            }
        }
        if let Some(dst) = ev.dst {
            if ev.dst_depth() as usize == sp.fork_level {
                sp.spec_written.insert(dst.0);
            }
        }

        // LAB: record loads that went to cache/memory (not SSB-forwarded).
        // Some memory events need `mem` masked for timing; the event copy
        // is skipped for the common case that needs no mask.
        let mut mask_mem = false;
        if let Some(m) = ev.mem {
            if !m.is_store && ev.executed {
                if sp.ssb.contains(m.addr) {
                    // Forwarded from the store buffer: 1-cycle, no cache.
                    mask_mem = true;
                } else {
                    sp.lab.insert(m.addr);
                }
            }
            if m.is_store {
                // Speculative stores do not touch the cache until commit.
                mask_mem = true;
            }
        }
        let timing_ev;
        let tev: &Event = if mask_mem {
            timing_ev = Event { mem: None, ..ev };
            &timing_ev
        } else {
            &ev
        };
        if traced {
            core.issue(tev, cache, cfg);
        } else {
            core.issue_quiet(tev, cache, cfg);
        }

        let fork_req = ev.fork.map(|start| (ev.kind.func(), start));
        sp.srb.push(ev);
        if sp.srb.len() >= cfg.srb_entries {
            sp.stalled = true;
        }
        // Wrong-path safety: speculative thread returned out of the fork
        // frame.
        if sp.cursor.depth() <= sp.fork_level {
            sp.stalled = true;
        }
        if sp.cursor.is_halted() {
            sp.stalled = true;
        }
        fork_req
    }

    /// Dependence check at the start-point, then fast commit / replay /
    /// squash according to the configured recovery policy.
    #[allow(clippy::too_many_arguments)]
    fn check_and_recover<'a>(
        &self,
        mut sp: SpecState<'a>,
        pool: &mut Vec<SpecState<'a>>,
        main: &mut Cursor<'a>,
        main_core: &mut PipelineCore,
        spec_eng: &Engine,
        cache: &mut CacheSim,
        mem: &mut Memory,
        tracker: &mut LoopCycleTracker<'_>,
        per_loop: &mut [PerLoopStats],
        per_core: &mut [PerCoreStats],
        steps: &mut u64,
        max_steps: u64,
        fast_commits: &mut u64,
        replays: &mut u64,
        divergence_kills: &mut u64,
        spec_checked: &mut u64,
        spec_misspec: &mut u64,
        want_effects: bool,
        fx: &mut CommitEffects,
        sink: &mut dyn TraceSink,
    ) -> Recovered {
        let cfg = &self.cfg;
        let policy = policy_for(cfg.recovery);
        let check_cycle = main_core.engine.cycle();
        *spec_checked += sp.srb.len() as u64;
        if let Some(li) = sp.loop_idx {
            per_loop[li].spec_instrs += sp.srb.len() as u64;
        }

        // Register dependence check.
        let violated_regs: RegSet = match cfg.reg_check {
            RegCheckPolicy::MarkBased => sp.live_in_reads.intersection(&sp.post_fork_writes),
            RegCheckPolicy::ValueBased => {
                let now = main.regs_at(sp.fork_level);
                match cfg.regfile {
                    RegFileMode::Arena => {
                        // The fork-level dirty mask was cleared at the
                        // fork, so only registers in dirty words can hold
                        // a value differing from the captured fork-time
                        // one; a clean frame compares nothing.
                        crate::specset::dirty_value_check(
                            main.dirty_words_at(sp.fork_level),
                            &sp.live_in_vals,
                            now,
                        )
                    }
                    RegFileMode::Legacy => {
                        let mut v = RegSet::new();
                        for &(r, fv) in &sp.live_in_vals {
                            if fv != now[r as usize] {
                                v.insert(r);
                            }
                        }
                        v
                    }
                }
            }
        };
        let violated = !violated_regs.is_empty() || !sp.violated_addrs.is_empty();

        if !violated && policy.allows_fast_commit() {
            // Fast commit: adopt the speculative context wholesale.
            let t = main_core.engine.cycle().max(spec_eng.cycle()) + cfg.fast_commit_overhead;
            let before = main_core.engine.cycle();
            main_core.engine.advance_to(t);
            main_core.engine.reset_context(t);
            tracker.attribute_extra(main_core.engine.cycle() - before);
            if want_effects {
                fx.drained_addrs.clear();
                fx.drained_addrs.extend(sp.ssb.addrs());
                // Downstream threads consume `written` only under
                // mark-based checking; skip the sorted union otherwise.
                fx.written.clear();
                if cfg.reg_check == RegCheckPolicy::MarkBased {
                    sp.spec_written
                        .union_sorted_into(&sp.post_fork_writes, &mut fx.written);
                }
            }
            sp.ssb.drain_to(mem);
            // Commit the speculative context. The register copy-back is a
            // *merge* at the fork-level frame: registers the speculative
            // thread wrote take its values; registers it never wrote keep
            // the main thread's — the main thread's post-fork writes are
            // program-order earlier than the speculative code and are only
            // superseded by speculative writes (the hardware tracks
            // spec-written registers in its scoreboard for exactly this).
            // A committing cursor that ran through the outermost `ret` has
            // already popped the fork-level frame — adopt it wholesale and
            // skip the merge (there is no frame left to blend into).
            match cfg.regfile {
                RegFileMode::Arena => {
                    // Blend main's values into the committing cursor first,
                    // then adopt it wholesale — same result as the legacy
                    // adopt-then-restore without the per-commit register
                    // snapshot allocation.
                    if sp.fork_level < sp.cursor.depth() {
                        sp.cursor
                            .merge_frame_from(main, sp.fork_level, sp.spec_written.words());
                    }
                    main.adopt(&sp.cursor);
                }
                RegFileMode::Legacy => {
                    let main_regs = main.regs_at(sp.fork_level).to_vec();
                    main.adopt(&sp.cursor);
                    if sp.fork_level < main.depth() {
                        for (r, v) in main_regs.iter().enumerate() {
                            if !sp.spec_written.contains(r as u32) {
                                main.set_reg_at(sp.fork_level, r, *v);
                            }
                        }
                    }
                }
            }
            *fast_commits += 1;
            if let Some(li) = sp.loop_idx {
                per_loop[li].fast_commits += 1;
            }
            per_core[sp.core].fast_commits += 1;
            if sink.enabled() {
                sink.emit(
                    main_core.engine.cycle(),
                    TraceEvent::FastCommit {
                        loop_id: sp.loop_idx,
                        fork_cycle: sp.fork_cycle,
                        srb_len: sp.srb.len(),
                    },
                );
            }
            pool.push(sp);
            return Recovered::FastCommit(want_effects);
        }

        if violated && policy.squash_on_violation() {
            // Trash all speculative results; main re-executes normally.
            // Tearing down the speculative thread costs the same minimum
            // thread-management overhead as any other end-of-speculation
            // action.
            main_core
                .engine
                .advance_to(main_core.engine.cycle() + cfg.fast_commit_overhead);
            if let Some(li) = sp.loop_idx {
                per_loop[li].kills += 1;
            }
            per_core[sp.core].kills += 1;
            // Everything in the SRB was wasted.
            *spec_misspec += sp.srb.len() as u64;
            if let Some(li) = sp.loop_idx {
                per_loop[li].spec_misspec += sp.srb.len() as u64;
            }
            if sink.enabled() {
                sink.emit(
                    main_core.engine.cycle(),
                    TraceEvent::Squash {
                        loop_id: sp.loop_idx,
                        fork_cycle: sp.fork_cycle,
                        srb_len: sp.srb.len(),
                    },
                );
            }
            pool.push(sp);
            return Recovered::Rollback;
        }

        // Replay with selective re-execution. Switching the main pipeline
        // into replay mode costs at least as much as a commit (drain +
        // speculation-buffer synchronization) — this is what makes the
        // fast-commit shortcut a shortcut.
        *replays += 1;
        if let Some(li) = sp.loop_idx {
            per_loop[li].replays += 1;
        }
        per_core[sp.core].replays += 1;
        main_core
            .engine
            .advance_to(main_core.engine.cycle() + cfg.fast_commit_overhead);
        main_core.engine.set_width(cfg.replay_width);

        // Sorted violation lists for the trace (the sets drive recovery;
        // the trace needs a deterministic order).
        let (trace_regs, trace_addrs) = if sink.enabled() {
            let mut addrs: Vec<u64> = sp.violated_addrs.iter().collect();
            addrs.sort_unstable();
            (violated_regs.iter().collect::<Vec<u32>>(), addrs)
        } else {
            (Vec::new(), Vec::new())
        };
        let mut committed_n = 0usize;
        let mut reexec_n = 0usize;

        let mut updated = DepthRegSet::new();
        updated.seed_level(sp.fork_level as u32, violated_regs);
        let mut updated_addrs = AddrMembers::new();
        for a in sp.violated_addrs.iter() {
            updated_addrs.insert(a);
        }

        // `processed` = SRB entries fully replayed before this iteration.
        for (processed, entry) in sp.srb.iter().enumerate() {
            if *steps >= max_steps {
                break;
            }
            // Control divergence: the correct path no longer matches the
            // speculated one — kill and resume normal execution here.
            if main.position() != Some(entry.kind) || main.is_halted() {
                *divergence_kills += 1;
                if let Some(li) = sp.loop_idx {
                    per_loop[li].kills += 1;
                }
                per_core[sp.core].kills += 1;
                if sink.enabled() {
                    sink.emit(
                        main_core.engine.cycle(),
                        TraceEvent::DivergenceKill {
                            loop_id: sp.loop_idx,
                            committed: processed,
                        },
                    );
                }
                break;
            }
            let cev = main.step(mem).expect("not halted");
            *steps += 1;

            // Misspeculation determination (the dependence checkers of §3.2
            // plus scoreboard propagation during replay).
            let mut missp = entry.executed != cev.executed;
            if !missp && cev.executed {
                for r in self.static_srcs(&cev) {
                    if updated.contains(cev.depth, r.0) {
                        missp = true;
                        break;
                    }
                }
                if let Some(m) = entry.mem {
                    if !m.is_store && updated_addrs.contains(m.addr) {
                        missp = true;
                    }
                }
            }

            // Timing: commit correct results directly; re-execute the rest.
            let delta = if missp {
                let d = main_core.issue(&cev, cache, cfg);
                *spec_misspec += 1;
                reexec_n += 1;
                if let Some(li) = sp.loop_idx {
                    per_loop[li].spec_misspec += 1;
                }
                d
            } else {
                committed_n += 1;
                main_core.commit_slot(&cev)
            };
            tracker.observe(&cev, delta);

            // Propagate "updated" marks.
            if let Some(dst) = cev.dst {
                let converged = cfg.reg_check == RegCheckPolicy::ValueBased
                    && cev.dst_val == entry.dst_val
                    && cev.executed == entry.executed;
                if missp && !converged {
                    updated.insert(cev.dst_depth(), dst.0);
                } else {
                    updated.remove(cev.dst_depth(), dst.0);
                }
            }
            if let Some(m) = cev.mem {
                if m.is_store && cev.executed {
                    let spec_val = entry.mem.filter(|em| em.is_store).map(|em| em.value);
                    if missp && spec_val != Some(m.value) {
                        updated_addrs.insert(m.addr);
                    } else {
                        updated_addrs.remove(m.addr);
                    }
                }
            }
            // Calls: a poisoned argument poisons the callee parameter.
            if cev.is_call() {
                if let EvKind::Inst { func, sref } = cev.kind {
                    if let Op::Call { args, .. } = &self.prog.func(func).inst(sref).op {
                        for (i, a) in args.iter().enumerate() {
                            if updated.contains(cev.depth, a.0) {
                                updated.insert(cev.depth + 1, i as u32);
                            }
                        }
                    }
                }
            }
        }

        main_core.engine.set_width(cfg.issue_width);
        if sink.enabled() {
            sink.emit(
                main_core.engine.cycle(),
                TraceEvent::Replay {
                    loop_id: sp.loop_idx,
                    fork_cycle: sp.fork_cycle,
                    check_cycle,
                    srb_len: sp.srb.len(),
                    committed: committed_n,
                    reexecuted: reexec_n,
                    reg_violations: trace_regs,
                    mem_violations: trace_addrs,
                },
            );
        }
        // SSB is discarded: replay wrote corrected values to memory
        // directly.
        pool.push(sp);
        Recovered::Rollback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::simulate_baseline;
    use crate::metrics::LoopAnnot;
    use spt_interp::run;
    use spt_mach::RecoveryKind;
    use spt_sir::{BinOp, ProgramBuilder};

    const FUEL: u64 = 5_000_000;

    /// A hand-transformed SPT loop mirroring Figure 1's shape:
    /// independent per-iteration work (on disjoint memory), induction
    /// variable advanced pre-fork -> perfectly parallel iterations.
    ///
    /// for i in 0..n { heavy(i); } with body = `work` dependent ALU ops and
    /// a store to mem[i].
    fn parallel_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, n);
        f.jmp(body);
        f.switch_to(body);
        // pre-fork: advance the induction variable for the next iteration.
        let cur = f.reg();
        f.mov(cur, i);
        f.addi(i, i, 1);
        f.spt_fork(body);
        // post-fork: serial ALU chain on `cur` then a store (all private).
        let mut acc = f.reg();
        f.mov(acc, cur);
        for _ in 0..work {
            let nx = f.reg();
            f.bin(BinOp::Add, nx, acc, acc);
            acc = nx;
        }
        f.store(acc, cur, 0);
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        f.ret(Some(i));
        let id = f.finish();
        let prog = pb.finish(id, n as usize + 4);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        (prog, annots)
    }

    /// A fully serial loop: acc = f(acc) each iteration (cross-iteration
    /// dependence read in the post-fork region -> every thread violated).
    fn serial_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let acc = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, n);
        f.const_(acc, 1);
        f.jmp(body);
        f.switch_to(body);
        f.addi(i, i, 1);
        f.spt_fork(body);
        // post-fork: serial chain through acc (cross-iteration).
        for _ in 0..work {
            let one = f.const_reg(1);
            let t = f.reg();
            f.bin(BinOp::Add, t, acc, one);
            f.mov(acc, t);
        }
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        f.ret(Some(acc));
        let id = f.finish();
        let prog = pb.finish(id, 4);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        (prog, annots)
    }

    /// Loop where iteration i stores to mem[i+1] and iteration i+1 loads
    /// mem[i+1] early: a true cross-iteration memory dependence.
    fn chained_store_loop() -> (Program, LoopAnnotations) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, 40);
        f.jmp(body);
        f.switch_to(body);
        let cur = f.reg();
        f.mov(cur, i);
        f.addi(i, i, 1);
        f.spt_fork(body);
        // post-fork: load mem[cur], add 1, store to mem[cur+1].
        let v = f.reg();
        f.load(v, cur, 0);
        let t = f.reg();
        let one = f.const_reg(1);
        f.bin(BinOp::Add, t, v, one);
        f.store(t, cur, 1);
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        let out = f.reg();
        let base40 = f.const_reg(40);
        f.load(out, base40, 0);
        f.ret(Some(out));
        let id = f.finish();
        let prog = pb.finish(id, 64);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        (prog, annots)
    }

    fn cfg_with_cores(cores: usize) -> MachineConfig {
        MachineConfig {
            cores,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn spt_preserves_sequential_semantics_parallel_loop() {
        let (prog, annots) = parallel_loop(50, 8);
        prog.verify().unwrap();
        let (seq, seq_mem) = run(&prog, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert!(!rep.out_of_fuel);
        assert_eq!(rep.ret, seq.ret);
        // Architectural memory must match the sequential run: re-run
        // sequentially and compare a few cells.
        for a in 0..50 {
            let expect = seq_mem.peek(a);
            // The SPT sim consumed its own memory internally; validate via
            // return value + spot behaviour (stores were i*2^work).
            assert_eq!(expect, (a as i64) << 8);
        }
        assert!(rep.forks > 0);
        assert!(
            rep.fast_commit_ratio() > 0.8,
            "parallel loop should fast-commit; ratio = {}",
            rep.fast_commit_ratio()
        );
    }

    #[test]
    fn spt_speeds_up_parallel_loop() {
        let (prog, annots) = parallel_loop(200, 16);
        let base = simulate_baseline(&prog, &MachineConfig::default(), &annots, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, base.ret);
        assert!(
            (rep.cycles as f64) < 0.8 * base.cycles as f64,
            "SPT {} vs baseline {}",
            rep.cycles,
            base.cycles
        );
    }

    #[test]
    fn spt_preserves_semantics_serial_loop() {
        let (prog, annots) = serial_loop(60, 6);
        prog.verify().unwrap();
        let (seq, _) = run(&prog, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, seq.ret);
        assert_eq!(rep.ret, Some(1 + 60 * 6));
        // Serial dependence: replays dominate, not fast commits.
        assert!(rep.replays > 0);
        assert!(
            rep.fast_commit_ratio() < 0.5,
            "ratio = {}",
            rep.fast_commit_ratio()
        );
        assert!(rep.spec_misspec > 0);
    }

    #[test]
    fn serial_loop_not_much_slower_than_baseline() {
        // Selective re-execution should keep the damage bounded.
        let (prog, annots) = serial_loop(100, 6);
        let base = simulate_baseline(&prog, &MachineConfig::default(), &annots, FUEL);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, base.ret);
        assert!(
            (rep.cycles as f64) < 1.6 * base.cycles as f64,
            "SPT {} vs baseline {}",
            rep.cycles,
            base.cycles
        );
    }

    #[test]
    fn kill_on_loop_exit_discards_speculation() {
        let (prog, annots) = parallel_loop(10, 4);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        // The final iteration's speculative thread runs off the loop end and
        // is killed by spt_kill (or superseded by a commit at the exit).
        assert!(rep.kills + rep.divergence_kills >= 1 || rep.forks == rep.fast_commits);
        assert!(!rep.out_of_fuel);
    }

    #[test]
    fn memory_violation_detected_and_repaired() {
        let (prog, annots) = chained_store_loop();
        prog.verify().unwrap();
        let (seq, _) = run(&prog, FUEL);
        assert_eq!(seq.ret, Some(40)); // mem[40] = 40 after the chain
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let rep = sim.run(FUEL);
        assert_eq!(rep.ret, Some(40), "memory dependence must be honored");
        assert!(rep.replays > 0, "violations must trigger replay");
    }

    #[test]
    fn squash_policy_still_correct_but_slower_than_srx() {
        let (prog, annots) = serial_loop(80, 6);
        let mut cfg_squash = MachineConfig::default();
        cfg_squash.recovery = RecoveryKind::Squash;
        let rep_sq = SptSim::new(&prog, cfg_squash, annots.clone()).run(FUEL);
        let rep_srx = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        assert_eq!(rep_sq.ret, rep_srx.ret);
        assert!(
            rep_sq.cycles >= rep_srx.cycles,
            "squash {} should not beat SRX {}",
            rep_sq.cycles,
            rep_srx.cycles
        );
    }

    #[test]
    fn srx_only_policy_replays_everything() {
        let (prog, annots) = parallel_loop(30, 4);
        let mut cfg = MachineConfig::default();
        cfg.recovery = RecoveryKind::SrxOnly;
        let rep = SptSim::new(&prog, cfg, annots).run(FUEL);
        assert_eq!(rep.fast_commits, 0);
        assert!(rep.replays > 0);
        assert_eq!(rep.ret, Some(30));
    }

    #[test]
    fn mark_based_checking_is_more_conservative() {
        // Value-based checking forgives silent re-writes of the same value;
        // mark-based does not. Loop writes `x = 7` every iteration and the
        // spec thread reads x post-fork.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let i = f.reg();
        let nn = f.reg();
        let x = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(nn, 30);
        f.const_(x, 7);
        f.jmp(body);
        f.switch_to(body);
        f.addi(i, i, 1);
        f.spt_fork(body);
        let y = f.reg();
        f.bin(BinOp::Add, y, x, i); // reads x (live-in)
        f.store(y, i, 0);
        f.const_(x, 7); // main post-fork write, same value
        let c = f.reg();
        f.bin(BinOp::CmpLt, c, i, nn);
        f.br(c, body, exit);
        f.switch_to(exit);
        f.spt_kill();
        f.ret(Some(x));
        let id = f.finish();
        let prog = pb.finish(id, 64);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: id,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        let rep_val = SptSim::new(&prog, MachineConfig::default(), annots.clone()).run(FUEL);
        let mut cfg_mark = MachineConfig::default();
        cfg_mark.reg_check = RegCheckPolicy::MarkBased;
        let rep_mark = SptSim::new(&prog, cfg_mark, annots).run(FUEL);
        assert_eq!(rep_val.ret, rep_mark.ret);
        assert!(
            rep_val.fast_commits > rep_mark.fast_commits,
            "value-based {} vs mark-based {}",
            rep_val.fast_commits,
            rep_mark.fast_commits
        );
    }

    #[test]
    fn tiny_srb_throttles_speculation() {
        let (prog, annots) = parallel_loop(50, 16);
        let mut cfg_small = MachineConfig::default();
        cfg_small.srb_entries = 8;
        let rep_small = SptSim::new(&prog, cfg_small, annots.clone()).run(FUEL);
        let rep_big = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        assert_eq!(rep_small.ret, rep_big.ret);
        assert!(
            rep_small.cycles >= rep_big.cycles,
            "small SRB {} vs default {}",
            rep_small.cycles,
            rep_big.cycles
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_fold_matches_report() {
        for (prog, annots) in [serial_loop(60, 6), parallel_loop(50, 8)] {
            let sim = SptSim::new(&prog, MachineConfig::default(), annots);
            let rep = sim.run(FUEL);
            let mut sink = spt_trace::RingBufferSink::unbounded();
            let rep_t = sim.run_traced(FUEL, &mut sink);
            // Tracing must not perturb timing or results.
            assert_eq!(rep.cycles, rep_t.cycles);
            assert_eq!(rep.instrs, rep_t.instrs);
            assert_eq!(rep.ret, rep_t.ret);
            // Folding the trace reproduces the report's counters.
            let fold = spt_trace::fold(sink.records());
            assert_eq!(fold.forks, rep.forks);
            assert_eq!(fold.forks_ignored, rep.forks_ignored);
            assert_eq!(fold.fast_commits, rep.fast_commits);
            assert_eq!(fold.replays, rep.replays);
            assert_eq!(fold.kills, rep.kills);
            assert_eq!(fold.divergence_kills, rep.divergence_kills);
        }
    }

    #[test]
    fn replay_events_name_the_violating_register() {
        let (prog, annots) = serial_loop(40, 6);
        let sim = SptSim::new(&prog, MachineConfig::default(), annots);
        let mut sink = spt_trace::RingBufferSink::unbounded();
        let rep = sim.run_traced(FUEL, &mut sink);
        assert!(rep.replays > 0);
        let fold = spt_trace::fold(sink.records());
        let l = &fold.per_loop[0];
        assert!(
            !l.reg_violations.is_empty(),
            "serial loop's cross-iteration register must be reported"
        );
        assert!(l.replay_lengths.count > 0);
        assert!(l.srb_occupancy.count > 0);
    }

    #[test]
    fn report_ratios_well_formed() {
        let (prog, annots) = parallel_loop(40, 8);
        let rep = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        assert!(rep.fast_commit_ratio() >= 0.0 && rep.fast_commit_ratio() <= 1.0);
        assert!(rep.misspeculation_ratio() >= 0.0 && rep.misspeculation_ratio() <= 1.0);
        assert!(rep.ipc() > 0.0);
        assert_eq!(rep.per_loop.len(), 1);
        assert!(rep.per_loop[0].forks > 0);
        assert!(rep.per_loop[0].cycles > 0);
    }

    // ---- N-core fabric -----------------------------------------------------

    #[test]
    fn fabric_preserves_semantics_at_any_core_count() {
        let (prog, annots) = parallel_loop(50, 8);
        let (seq, seq_mem) = run(&prog, FUEL);
        for cores in [2usize, 3, 4, 8] {
            let sim = SptSim::new(&prog, cfg_with_cores(cores), annots.clone());
            let (rep, mem) = sim.run_with_memory(FUEL);
            assert!(!rep.out_of_fuel, "cores={cores}");
            assert_eq!(rep.ret, seq.ret, "cores={cores}");
            for a in 0..54 {
                assert_eq!(mem.peek(a), seq_mem.peek(a), "cores={cores} addr={a}");
            }
        }
    }

    #[test]
    fn fabric_preserves_semantics_serial_loop_at_n4() {
        // Every iteration violates; replays roll back all ring successors.
        let (prog, annots) = serial_loop(60, 6);
        let rep = SptSim::new(&prog, cfg_with_cores(4), annots).run(FUEL);
        assert_eq!(rep.ret, Some(1 + 60 * 6));
        assert!(rep.replays > 0);
    }

    #[test]
    fn more_cores_do_not_degrade_parallel_loop() {
        let (prog, annots) = parallel_loop(200, 16);
        let rep2 = SptSim::new(&prog, cfg_with_cores(2), annots.clone()).run(FUEL);
        let rep4 = SptSim::new(&prog, cfg_with_cores(4), annots.clone()).run(FUEL);
        let rep8 = SptSim::new(&prog, cfg_with_cores(8), annots).run(FUEL);
        assert_eq!(rep2.ret, rep4.ret);
        assert_eq!(rep2.ret, rep8.ret);
        assert!(
            rep4.cycles <= rep2.cycles,
            "N=4 ({}) must not be slower than N=2 ({})",
            rep4.cycles,
            rep2.cycles
        );
        assert!(
            rep8.cycles <= rep4.cycles,
            "N=8 ({}) must not be slower than N=4 ({})",
            rep8.cycles,
            rep4.cycles
        );
        // Ring forks actually happened.
        assert!(rep4.forks > rep2.forks || rep4.fast_commits > rep2.fast_commits);
    }

    #[test]
    fn ring_forks_traced_and_fold_oracle_holds_at_n4() {
        let (prog, annots) = parallel_loop(80, 8);
        let sim = SptSim::new(&prog, cfg_with_cores(4), annots);
        let mut sink = spt_trace::RingBufferSink::unbounded();
        let rep = sim.run_traced(FUEL, &mut sink);
        let ring_forks = sink
            .records()
            .filter(|r| matches!(r.ev, TraceEvent::RingFork { .. }))
            .count();
        assert!(ring_forks > 0, "N=4 parallel loop must ring-fork");
        // Every RingFork names a valid speculative core.
        for r in sink.records() {
            if let TraceEvent::RingFork { core, .. } = r.ev {
                assert!((1..4).contains(&core));
            }
        }
        // The fold-vs-report oracle holds with ring forks in the stream.
        let fold = spt_trace::fold(sink.records());
        assert_eq!(fold.forks, rep.forks);
        assert_eq!(fold.fast_commits, rep.fast_commits);
        assert_eq!(fold.replays, rep.replays);
        assert_eq!(fold.kills, rep.kills);
    }

    #[test]
    fn per_core_stats_populated() {
        let (prog, annots) = parallel_loop(50, 8);
        let rep2 = SptSim::new(&prog, cfg_with_cores(2), annots.clone()).run(FUEL);
        assert_eq!(rep2.per_core.len(), 2);
        assert_eq!(rep2.per_core[0].core, 0);
        assert_eq!(rep2.per_core[0].instrs, rep2.instrs);
        assert_eq!(rep2.per_core[0].threads, 0);
        assert_eq!(rep2.per_core[1].threads, rep2.forks);
        assert_eq!(rep2.per_core[1].fast_commits, rep2.fast_commits);
        assert!(rep2.per_core[1].instrs > 0);
        assert!(rep2.spec_core_instr_share() > 0.0);

        let rep4 = SptSim::new(&prog, cfg_with_cores(4), annots).run(FUEL);
        assert_eq!(rep4.per_core.len(), 4);
        let threads: u64 = rep4.per_core.iter().map(|c| c.threads).sum();
        assert_eq!(threads, rep4.forks);
        let outcomes: u64 = rep4
            .per_core
            .iter()
            .map(|c| c.fast_commits + c.replays + c.kills)
            .sum();
        // Every spawned thread is resolved exactly once (commit, replay,
        // squash, divergence, or kill).
        assert_eq!(outcomes, rep4.fast_commits + rep4.replays + rep4.kills);
    }

    #[test]
    fn mark_based_checking_stays_correct_at_n4() {
        let (prog, annots) = parallel_loop(40, 6);
        let mut cfg = cfg_with_cores(4);
        cfg.reg_check = RegCheckPolicy::MarkBased;
        let rep = SptSim::new(&prog, cfg, annots).run(FUEL);
        assert_eq!(rep.ret, Some(40));
    }

    #[test]
    fn cross_thread_memory_dependence_detected_at_n4() {
        // With 4 cores, downstream ring threads load words their
        // predecessors store, exercising the drained-SSB vs LAB check.
        let (prog, annots) = chained_store_loop();
        let rep = SptSim::new(&prog, cfg_with_cores(4), annots).run(FUEL);
        assert_eq!(
            rep.ret,
            Some(40),
            "cross-thread memory dependence must be honored"
        );
    }

    #[test]
    fn arena_and_legacy_regfile_bit_identical() {
        // The slab layout with dirty-word checks and in-place merges must be
        // indistinguishable from the legacy compare/snapshot-restore paths:
        // same cycles, instructions, outcome counters, and return value on
        // fast-commit-heavy, replay-heavy, and memory-violating loops at
        // every ring width.
        let cases: Vec<(&str, Program, LoopAnnotations)> = {
            let (p1, a1) = parallel_loop(60, 8);
            let (p2, a2) = serial_loop(50, 6);
            let (p3, a3) = chained_store_loop();
            vec![
                ("parallel", p1, a1),
                ("serial", p2, a2),
                ("chained-store", p3, a3),
            ]
        };
        for (name, prog, annots) in &cases {
            for cores in [2usize, 4, 8] {
                let mut arena = cfg_with_cores(cores);
                arena.regfile = RegFileMode::Arena;
                let mut legacy = cfg_with_cores(cores);
                legacy.regfile = RegFileMode::Legacy;
                let ra = SptSim::new(prog, arena, annots.clone()).run(FUEL);
                let rl = SptSim::new(prog, legacy, annots.clone()).run(FUEL);
                let ctx = format!("{name} @ {cores} cores");
                assert_eq!(ra.ret, rl.ret, "{ctx}: ret");
                assert_eq!(ra.cycles, rl.cycles, "{ctx}: cycles");
                assert_eq!(ra.instrs, rl.instrs, "{ctx}: instrs");
                assert_eq!(ra.steps, rl.steps, "{ctx}: steps");
                assert_eq!(ra.forks, rl.forks, "{ctx}: forks");
                assert_eq!(ra.fast_commits, rl.fast_commits, "{ctx}: fast commits");
                assert_eq!(ra.replays, rl.replays, "{ctx}: replays");
                assert_eq!(ra.kills, rl.kills, "{ctx}: kills");
                assert_eq!(ra.spec_misspec, rl.spec_misspec, "{ctx}: misspec");
            }
        }
    }
}
