//! Loop annotations, per-loop cycle attribution, and report types.

use spt_interp::{EvKind, Event};
use spt_sir::{BlockId, FuncId};

/// A loop region of interest (one SPT loop, or any loop being profiled).
#[derive(Clone, Debug)]
pub struct LoopAnnot {
    /// Caller-chosen identifier (stable across baseline and SPT runs).
    pub id: usize,
    pub func: FuncId,
    /// Blocks belonging to the loop, sorted.
    pub blocks: Vec<BlockId>,
    /// The speculative start-point block, if this is a transformed SPT loop.
    pub fork_start: Option<BlockId>,
}

impl LoopAnnot {
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// The set of annotated loops for a program (must be non-overlapping —
/// SPT loops never nest, enforced by compiler selection).
#[derive(Clone, Debug, Default)]
pub struct LoopAnnotations {
    pub loops: Vec<LoopAnnot>,
}

impl LoopAnnotations {
    pub fn empty() -> Self {
        Self::default()
    }

    /// The loop whose start-point is `block` in `func`, if any.
    pub fn by_fork_start(&self, func: FuncId, block: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .position(|l| l.func == func && l.fork_start == Some(block))
    }
}

/// Attributes main-pipeline cycle deltas to the annotated loop currently
/// executing. Calls made from inside a loop are attributed to the loop;
/// leaving the loop's blocks at the loop's frame depth ends the region.
pub struct LoopCycleTracker<'a> {
    annots: &'a LoopAnnotations,
    /// `lookup[func][block]` = annot index owning that block, or
    /// [`NO_LOOP`]. `observe` runs once per main-pipeline event, so
    /// membership is one flat table read instead of a scan over the
    /// annotations with a binary search each (annotated loops never
    /// overlap, so the owning loop is unique).
    lookup: Vec<Vec<u16>>,
    /// (annot index, frame depth at entry)
    active: Option<(usize, u32)>,
    /// Cycles attributed per annot index.
    cycles: Vec<u64>,
    /// Dynamic instructions attributed per annot index.
    instrs: Vec<u64>,
}

/// Sentinel in [`LoopCycleTracker::lookup`]: block belongs to no loop.
const NO_LOOP: u16 = u16::MAX;

impl<'a> LoopCycleTracker<'a> {
    pub fn new(annots: &'a LoopAnnotations) -> Self {
        let n = annots.loops.len();
        let mut lookup: Vec<Vec<u16>> = Vec::new();
        for (i, l) in annots.loops.iter().enumerate() {
            let fi = l.func.index();
            if lookup.len() <= fi {
                lookup.resize_with(fi + 1, Vec::new);
            }
            let per = &mut lookup[fi];
            for &b in &l.blocks {
                let bi = b.index();
                if per.len() <= bi {
                    per.resize(bi + 1, NO_LOOP);
                }
                if per[bi] == NO_LOOP {
                    // First annotation wins, matching `LoopAnnotations::find`.
                    per[bi] = i as u16;
                }
            }
        }
        LoopCycleTracker {
            annots,
            lookup,
            active: None,
            cycles: vec![0; n],
            instrs: vec![0; n],
        }
    }

    /// The annot index owning `block` of `func`, if any (flat lookup;
    /// equivalent to `LoopAnnotations::find`).
    #[inline]
    fn loop_at(&self, func: FuncId, block: BlockId) -> Option<usize> {
        match self.lookup.get(func.index())?.get(block.index()) {
            Some(&i) if i != NO_LOOP => Some(i as usize),
            _ => None,
        }
    }

    /// Current loop annot index, if inside one.
    pub fn current(&self) -> Option<usize> {
        self.active.map(|(i, _)| i)
    }

    /// Observe one main-pipeline event and the cycle delta it caused.
    pub fn observe(&mut self, ev: &Event, cycle_delta: u64) {
        let (func, block) = match ev.kind {
            EvKind::Inst { func, sref } => (func, sref.block),
            EvKind::Term { func, block } => (func, block),
        };
        // One flat membership lookup serves both the exit and entry checks
        // (a block belongs to at most one annotated loop).
        let here = self.loop_at(func, block);
        // Exit checks.
        if let Some((idx, depth)) = self.active {
            if ev.depth < depth || (ev.depth == depth && here != Some(idx)) {
                self.active = None;
            }
        }
        // Entry check (only at the event's own depth).
        if self.active.is_none() {
            if let Some(idx) = here {
                self.active = Some((idx, ev.depth));
            }
        }
        if let Some((idx, _)) = self.active {
            self.cycles[idx] += cycle_delta;
            self.instrs[idx] += 1;
        }
    }

    /// Attribute extra cycles (e.g. commit overhead) to the current loop.
    pub fn attribute_extra(&mut self, cycle_delta: u64) {
        if let Some((idx, _)) = self.active {
            self.cycles[idx] += cycle_delta;
        }
    }

    pub fn cycles(&self) -> &[u64] {
        &self.cycles
    }

    pub fn instrs(&self) -> &[u64] {
        &self.instrs
    }

    pub fn annotations(&self) -> &'a LoopAnnotations {
        self.annots
    }

    /// Fold the attributed cycles and instructions into per-loop stat
    /// rows (one row per annotation, in annotation order) — the common
    /// tail of both the baseline and SPT report paths.
    pub fn fold_into(&self, per_loop: &mut [PerLoopStats]) {
        for (i, pl) in per_loop.iter_mut().enumerate() {
            pl.cycles = self.cycles[i];
            pl.instrs = self.instrs[i];
        }
    }
}

/// Per-SPT-loop speculation statistics (Figure 8 inputs).
#[derive(Clone, Debug, Default)]
pub struct PerLoopStats {
    pub id: usize,
    /// Main-pipeline cycles attributed to the loop region.
    pub cycles: u64,
    /// Dynamic main-pipeline instructions in the region.
    pub instrs: u64,
    pub forks: u64,
    pub fast_commits: u64,
    pub replays: u64,
    /// Squash-kills: loop-exit `spt_kill` plus replay divergences.
    pub kills: u64,
    /// Speculatively executed instructions (SRB entries that reached a
    /// dependence check).
    pub spec_instrs: u64,
    /// Of those, instructions that were misspeculated and re-executed.
    pub spec_misspec: u64,
}

impl PerLoopStats {
    pub fn fast_commit_ratio(&self) -> f64 {
        if self.forks == 0 {
            0.0
        } else {
            self.fast_commits as f64 / self.forks as f64
        }
    }

    pub fn misspeculation_ratio(&self) -> f64 {
        if self.spec_instrs == 0 {
            0.0
        } else {
            self.spec_misspec as f64 / self.spec_instrs as f64
        }
    }
}

/// Per-core statistics of the speculation fabric (core 0 is the
/// architectural pipeline; cores 1..N-1 host speculative threads).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerCoreStats {
    /// Fabric core index.
    pub core: usize,
    /// Instructions issued by this core's pipeline (for speculative
    /// cores: speculative instructions, whether or not they committed).
    pub instrs: u64,
    /// Speculative threads spawned onto this core (always 0 for core 0).
    pub threads: u64,
    /// Threads hosted here that fast-committed.
    pub fast_commits: u64,
    /// Threads hosted here that went through replay.
    pub replays: u64,
    /// Threads hosted here that were killed, squashed, or divergence-
    /// killed.
    pub kills: u64,
}

impl PerCoreStats {
    /// Fraction of threads hosted on this core that fast-committed
    /// (0 for an idle core).
    pub fn fast_commit_ratio(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.fast_commits as f64 / self.threads as f64
        }
    }

    /// Fraction of hosted threads whose work was (partly) wasted:
    /// replayed or killed (0 for an idle core).
    pub fn waste_ratio(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            (self.replays + self.kills) as f64 / self.threads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_sir::{LatClass, StmtRef};

    fn ev(func: u32, block: u32, depth: u32) -> Event {
        let mut e = Event::blank(
            EvKind::Inst {
                func: FuncId(func),
                sref: StmtRef::new(BlockId(block), 0),
            },
            LatClass::Alu,
            depth,
        );
        e.executed = true;
        e
    }

    fn annots() -> LoopAnnotations {
        LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 7,
                func: FuncId(0),
                blocks: vec![BlockId(2), BlockId(3)],
                fork_start: Some(BlockId(2)),
            }],
        }
    }

    #[test]
    fn attributes_cycles_inside_loop_blocks() {
        let a = annots();
        let mut t = LoopCycleTracker::new(&a);
        t.observe(&ev(0, 1, 0), 5); // outside
        assert_eq!(t.current(), None);
        t.observe(&ev(0, 2, 0), 3); // enter loop
        assert_eq!(t.current(), Some(0));
        t.observe(&ev(0, 3, 0), 2); // still inside
        t.observe(&ev(0, 1, 0), 4); // exit
        assert_eq!(t.current(), None);
        assert_eq!(t.cycles()[0], 5);
        assert_eq!(t.instrs()[0], 2);
    }

    #[test]
    fn callee_events_attributed_to_loop() {
        let a = annots();
        let mut t = LoopCycleTracker::new(&a);
        t.observe(&ev(0, 2, 0), 1); // enter loop at depth 0
        t.observe(&ev(1, 0, 1), 9); // inside a callee (deeper)
        assert_eq!(t.current(), Some(0));
        t.observe(&ev(0, 2, 0), 1); // back in loop
        t.observe(&ev(0, 9, 0), 1); // exit at same depth, other block
        assert_eq!(t.current(), None);
        assert_eq!(t.cycles()[0], 11);
    }

    #[test]
    fn returning_below_entry_depth_exits_loop() {
        let a = annots();
        let mut t = LoopCycleTracker::new(&a);
        t.observe(&ev(0, 2, 3), 1); // loop entered at depth 3
        t.observe(&ev(0, 0, 2), 1); // shallower: left the frame
        assert_eq!(t.current(), None);
        assert_eq!(t.cycles()[0], 1);
    }

    #[test]
    fn fork_start_lookup() {
        let a = annots();
        assert_eq!(a.by_fork_start(FuncId(0), BlockId(2)), Some(0));
        assert_eq!(a.by_fork_start(FuncId(0), BlockId(3)), None);
        assert_eq!(a.by_fork_start(FuncId(1), BlockId(2)), None);
    }

    #[test]
    fn ratios() {
        let s = PerLoopStats {
            forks: 10,
            fast_commits: 6,
            spec_instrs: 1000,
            spec_misspec: 12,
            ..Default::default()
        };
        assert!((s.fast_commit_ratio() - 0.6).abs() < 1e-9);
        assert!((s.misspeculation_ratio() - 0.012).abs() < 1e-9);
        let z = PerLoopStats::default();
        assert_eq!(z.fast_commit_ratio(), 0.0);
        assert_eq!(z.misspeculation_ratio(), 0.0);
    }

    #[test]
    fn per_core_ratios_guard_zero_denominators() {
        let idle = PerCoreStats {
            core: 3,
            ..Default::default()
        };
        assert_eq!(idle.fast_commit_ratio(), 0.0);
        assert_eq!(idle.waste_ratio(), 0.0);
        assert!(idle.fast_commit_ratio().is_finite());
        let busy = PerCoreStats {
            core: 1,
            threads: 8,
            fast_commits: 6,
            replays: 1,
            kills: 1,
            ..Default::default()
        };
        assert!((busy.fast_commit_ratio() - 0.75).abs() < 1e-9);
        assert!((busy.waste_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fold_into_copies_attribution() {
        let a = annots();
        let mut t = LoopCycleTracker::new(&a);
        t.observe(&ev(0, 2, 0), 3);
        t.observe(&ev(0, 3, 0), 2);
        let mut per_loop = vec![PerLoopStats {
            id: 7,
            forks: 5,
            ..Default::default()
        }];
        t.fold_into(&mut per_loop);
        assert_eq!(per_loop[0].cycles, 5);
        assert_eq!(per_loop[0].instrs, 2);
        assert_eq!(per_loop[0].forks, 5, "non-attribution fields untouched");
    }
}
