//! # SPT simulators
//!
//! Two execution-driven timing simulators over SIR programs:
//!
//! * [`baseline::simulate_baseline`] — one Itanium2-like in-order core
//!   running the sequential program; the paper's baseline reference.
//! * [`spt::SptSim`] — the SPT architecture of §3: a main pipeline and a
//!   speculative pipeline sharing the cache hierarchy, with `spt_fork` /
//!   `spt_kill`, a speculation result buffer, a speculative store buffer, a
//!   load address buffer, register and memory dependence checkers, and the
//!   selective re-execution / fast-commit recovery mechanism.
//!
//! Both simulators report the cycle breakdown used by Figure 9 (execution,
//! pipeline stall, D-cache stall) plus the speculation statistics of
//! Figure 8 (fast-commit ratio, misspeculation ratio) and per-loop cycle
//! attributions.

pub mod baseline;
pub mod engine;
pub mod metrics;
pub mod spt;
pub mod ssb;

pub use baseline::{
    simulate_baseline, simulate_baseline_traced, simulate_baseline_with_memory, BaselineReport,
};
pub use engine::{CycleBreakdown, Engine, StallBreakdown, StallKind};
pub use metrics::{LoopAnnot, LoopAnnotations, LoopCycleTracker, PerLoopStats};
pub use spt::{SptReport, SptSim};
pub use ssb::{SpecMem, Ssb};
