//! # SPT simulators
//!
//! Two execution-driven timing simulators over SIR programs:
//!
//! * [`baseline::simulate_baseline`] — one Itanium2-like in-order core
//!   running the sequential program; the paper's baseline reference.
//! * [`spt::SptSim`] — the SPT speculation fabric: an N-core ring of
//!   in-order pipelines (§3 of the paper describes N=2) where core 0 runs
//!   the architectural thread and cores 1..N-1 run successive speculative
//!   loop iterations, with `spt_fork` / `spt_kill`, per-core speculation
//!   result buffers, speculative store buffers, load address buffers,
//!   register and memory dependence checkers, and pluggable
//!   [`recovery::RecoveryPolicy`] mechanisms (selective re-execution with
//!   fast commit by default).
//!
//! Both simulators share the per-pipeline [`pipeline::PipelineCore`]
//! (timing engine + stall-transition trace state) and report the cycle
//! breakdown used by Figure 9 (execution, pipeline stall, D-cache stall)
//! plus the speculation statistics of Figure 8 (fast-commit ratio,
//! misspeculation ratio), per-loop attributions, and per-core fabric
//! statistics.

pub mod arena;
pub mod baseline;
pub mod engine;
pub mod metrics;
pub mod pipeline;
pub mod recovery;
pub mod specset;
pub mod spt;
pub mod ssb;

pub use arena::{arena_enabled, arena_stats, with_thread_arena, ArenaStats, SimArena};
pub use baseline::{
    simulate_baseline, simulate_baseline_in, simulate_baseline_traced,
    simulate_baseline_with_memory, BaselineReport,
};
pub use engine::{CycleBreakdown, Engine, StallBreakdown, StallKind};
pub use metrics::{LoopAnnot, LoopAnnotations, LoopCycleTracker, PerCoreStats, PerLoopStats};
pub use pipeline::PipelineCore;
pub use recovery::{policy_for, FullSquash, RecoveryPolicy, SrxFastCommit, SrxOnly};
pub use specset::{AddrList, AddrMembers, DepthRegSet, RegSet};
pub use spt::{SptReport, SptSim};
pub use ssb::{SpecMem, Ssb};
