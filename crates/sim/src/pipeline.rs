//! One in-order pipeline core of the speculation fabric.
//!
//! [`PipelineCore`] wraps a timing [`Engine`] together with the per-pipe
//! stall bookkeeping that feeds `StallTransition` trace events, and
//! provides the canonical issue sequence — capture the breakdown, issue,
//! attribute the cycle delta, note the stall transition — that the
//! baseline simulator and every core of the SPT fabric previously
//! duplicated inline.

use crate::engine::{CycleBreakdown, Engine};
use crate::metrics::LoopCycleTracker;
use spt_interp::Event;
use spt_mach::{CacheSim, MachineConfig};
use spt_trace::{Pipe, StallClass, TraceEvent, TraceSink};

/// An in-order pipeline plus its trace-facing stall state.
pub struct PipelineCore {
    pub engine: Engine,
    pipe: Pipe,
    /// Last stall class reported for this pipe (trace-only state).
    last_stall: Option<StallClass>,
    /// Breakdown before the most recent issue and the cycle right after
    /// it, pending a [`PipelineCore::note_stall`].
    pending: Option<(CycleBreakdown, u64)>,
}

impl PipelineCore {
    pub fn new(cfg: &MachineConfig, pipe: Pipe) -> Self {
        PipelineCore {
            engine: Engine::new(cfg),
            pipe,
            last_stall: None,
            pending: None,
        }
    }

    /// Reset to exactly [`PipelineCore::new`]`(cfg, pipe)` state, reusing
    /// the engine's heap allocations (arena path, DESIGN.md §3i).
    pub fn reset(&mut self, cfg: &MachineConfig, pipe: Pipe) {
        self.engine.reset(cfg);
        self.pipe = pipe;
        self.last_stall = None;
        self.pending = None;
    }

    /// Approximate retained heap bytes (arena telemetry).
    pub fn approx_bytes(&self) -> usize {
        self.engine.approx_bytes()
    }

    /// Issue one event; returns the cycle delta it cost. The before/after
    /// breakdown is remembered for a later [`PipelineCore::note_stall`].
    pub fn issue(&mut self, ev: &Event, cache: &mut CacheSim, cfg: &MachineConfig) -> u64 {
        let before = self.engine.cycle();
        let before_bd = self.engine.breakdown();
        self.engine.issue(ev, cache, cfg);
        self.pending = Some((before_bd, self.engine.cycle()));
        self.engine.cycle() - before
    }

    /// [`PipelineCore::issue`] without the before/after breakdown capture:
    /// for untraced runs, where no [`PipelineCore::note_stall`] will ever
    /// consume it. Same engine mutation, so timing is identical.
    pub fn issue_quiet(&mut self, ev: &Event, cache: &mut CacheSim, cfg: &MachineConfig) -> u64 {
        let before = self.engine.cycle();
        self.engine.issue(ev, cache, cfg);
        self.engine.cycle() - before
    }

    /// Commit one already-computed SRB result at replay bandwidth;
    /// returns the cycle delta.
    pub fn commit_slot(&mut self, ev: &Event) -> u64 {
        let before = self.engine.cycle();
        self.engine.commit_slot(ev);
        self.engine.cycle() - before
    }

    /// Emit a `StallTransition` if the most recent issue attributed new
    /// idle cycles to a different stall class than last reported for this
    /// pipe. A no-op when nothing was issued since the last note.
    pub fn note_stall(&mut self, sink: &mut dyn TraceSink) {
        let Some((before, cycle)) = self.pending.take() else {
            return;
        };
        let after = self.engine.breakdown();
        let kind = if after.dcache_stall > before.dcache_stall {
            Some(StallClass::DCache)
        } else if after.pipe_stall > before.pipe_stall {
            Some(StallClass::Pipeline)
        } else {
            None
        };
        if let Some(k) = kind {
            if self.last_stall != Some(k) {
                self.last_stall = Some(k);
                sink.emit(
                    cycle,
                    TraceEvent::StallTransition {
                        pipe: self.pipe,
                        kind: k,
                    },
                );
            }
        }
    }

    /// The canonical main-pipeline step: issue, attribute the cycle delta
    /// to the loop tracker, and note any stall transition.
    pub fn step_issue(
        &mut self,
        ev: &Event,
        cache: &mut CacheSim,
        cfg: &MachineConfig,
        tracker: &mut LoopCycleTracker<'_>,
        sink: &mut dyn TraceSink,
    ) {
        let delta = self.issue(ev, cache, cfg);
        tracker.observe(ev, delta);
        if sink.enabled() {
            self.note_stall(sink);
        }
    }

    /// [`PipelineCore::step_issue`] for untraced runs: no breakdown
    /// capture, no stall note, no per-event virtual sink call.
    pub fn step_issue_quiet(
        &mut self,
        ev: &Event,
        cache: &mut CacheSim,
        cfg: &MachineConfig,
        tracker: &mut LoopCycleTracker<'_>,
    ) {
        let delta = self.issue_quiet(ev, cache, cfg);
        tracker.observe(ev, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LoopAnnotations;
    use spt_interp::{Cursor, DecodedProgram, Memory};
    use spt_sir::{BinOp, Program, ProgramBuilder};
    use spt_trace::RingBufferSink;

    fn loady_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("m", 0);
        let base = f.const_reg(0);
        let v = f.reg();
        f.load(v, base, 0);
        let d = f.reg();
        f.bin(BinOp::Add, d, v, v); // waits on the cold miss
        f.ret(Some(d));
        let id = f.finish();
        pb.finish(id, 8)
    }

    #[test]
    fn step_issue_matches_manual_sequence() {
        let cfg = MachineConfig::default();
        let prog = loady_program();
        let mut core = PipelineCore::new(&cfg, Pipe::Main);
        let mut cache = CacheSim::new(&cfg);
        let mut mem = Memory::for_program(&prog);
        let dec = DecodedProgram::new(&prog);
        let mut cur = Cursor::at_entry(&dec);
        let annots = LoopAnnotations::empty();
        let mut tracker = LoopCycleTracker::new(&annots);
        let mut sink = RingBufferSink::unbounded();

        let mut manual = Engine::new(&cfg);
        let mut manual_cache = CacheSim::new(&cfg);
        let mut manual_mem = Memory::for_program(&prog);
        let mut manual_cur = Cursor::at_entry(&dec);

        while let Some(ev) = cur.step(&mut mem) {
            core.step_issue(&ev, &mut cache, &cfg, &mut tracker, &mut sink);
            let mev = manual_cur.step(&mut manual_mem).unwrap();
            manual.issue(&mev, &mut manual_cache, &cfg);
        }
        assert_eq!(core.engine.cycle(), manual.cycle());
        assert_eq!(core.engine.instrs(), manual.instrs());
        assert_eq!(core.engine.breakdown(), manual.breakdown());
    }

    #[test]
    fn stall_transitions_emitted_on_class_change_only() {
        let cfg = MachineConfig::default();
        let prog = loady_program();
        let mut core = PipelineCore::new(&cfg, Pipe::Spec);
        let mut cache = CacheSim::new(&cfg);
        let mut mem = Memory::for_program(&prog);
        let dec = DecodedProgram::new(&prog);
        let mut cur = Cursor::at_entry(&dec);
        let annots = LoopAnnotations::empty();
        let mut tracker = LoopCycleTracker::new(&annots);
        let mut sink = RingBufferSink::unbounded();
        while let Some(ev) = cur.step(&mut mem) {
            core.step_issue(&ev, &mut cache, &cfg, &mut tracker, &mut sink);
        }
        // The cold load causes exactly one transition into DCache; repeat
        // stalls of the same class must not re-emit.
        let dcache: Vec<_> = sink
            .records()
            .filter(|r| {
                matches!(
                    r.ev,
                    TraceEvent::StallTransition {
                        pipe: Pipe::Spec,
                        kind: StallClass::DCache
                    }
                )
            })
            .collect();
        assert_eq!(dcache.len(), 1);
    }

    #[test]
    fn note_stall_without_issue_is_noop() {
        let cfg = MachineConfig::default();
        let mut core = PipelineCore::new(&cfg, Pipe::Main);
        let mut sink = RingBufferSink::unbounded();
        core.note_stall(&mut sink);
        assert_eq!(sink.records().count(), 0);
    }
}
