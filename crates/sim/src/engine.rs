//! In-order issue engine: the per-pipeline timing model.
//!
//! One [`Engine`] models one in-order pipeline (Table 1: 6-wide issue,
//! 12-wide during replay). It consumes interpreter [`Event`]s in program
//! order and advances a cycle counter, stalling on operand readiness
//! (scoreboard), structural issue-width limits, and branch mispredictions
//! (GAg + 5-cycle penalty). Loads go to the shared cache hierarchy.
//!
//! Every idle gap is attributed to a stall class so the simulators can
//! produce the Figure 9 breakdown: *execution* (cycles with at least one
//! instruction issued), *pipeline stall* (operand latency, branch penalty,
//! SPT overheads), and *D-cache stall* (waiting on a load result).

use spt_interp::Event;
use spt_mach::{CacheSim, GagPredictor, MachineConfig, ProducerKind, Scoreboard};
use spt_sir::LatClass;

/// Why the pipeline was idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    Pipeline,
    DCache,
}

/// Attribution of `pipe_stall` cycles to their proximate cause, so the
/// Figure 9 pipe-stall cells can be decomposed further.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Waiting out a branch-misprediction fetch redirect.
    pub fetch_gate: u64,
    /// Waiting on a non-load operand producer (ALU/mul/div latency).
    pub operand: u64,
    /// Explicit `advance_to` jumps (SPT overheads: RF copy, fast commit).
    pub advance: u64,
}

impl StallBreakdown {
    pub fn total(&self) -> u64 {
        self.fetch_gate + self.operand + self.advance
    }
}

/// Cycle accounting of one pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles in which at least one instruction issued.
    pub busy: u64,
    /// Idle cycles waiting on non-load producers, branch penalty, or SPT
    /// overheads (fork copy, fast commit).
    pub pipe_stall: u64,
    /// Idle cycles waiting on a load result.
    pub dcache_stall: u64,
    /// Cause attribution of `pipe_stall`; `stall.total() == pipe_stall`.
    pub stall: StallBreakdown,
}

impl CycleBreakdown {
    pub fn total(&self) -> u64 {
        self.busy + self.pipe_stall + self.dcache_stall
    }
}

/// One in-order pipeline.
pub struct Engine {
    cycle: u64,
    slots_used: u64,
    width: u64,
    /// No instruction may issue before this (branch-misprediction redirect).
    fetch_gate: u64,
    sb: Scoreboard,
    bp: GagPredictor,
    // accounting
    last_busy_cycle: u64,
    started: bool,
    breakdown: CycleBreakdown,
    instrs: u64,
    bp_lookups: u64,
    bp_mispredicts: u64,
}

impl Engine {
    pub fn new(cfg: &MachineConfig) -> Self {
        Engine {
            cycle: 0,
            slots_used: 0,
            width: cfg.issue_width,
            fetch_gate: 0,
            sb: Scoreboard::new(),
            bp: GagPredictor::new(cfg.bp_entries),
            last_busy_cycle: u64::MAX,
            started: false,
            breakdown: CycleBreakdown::default(),
            instrs: 0,
            bp_lookups: 0,
            bp_mispredicts: 0,
        }
    }

    /// Reset to exactly [`Engine::new`]`(cfg)` state, reusing the
    /// scoreboard frame slots and predictor table (arena path, DESIGN.md
    /// §3i). `reset_all(0)` leaves the scoreboard observationally fresh:
    /// stale entries are dead behind the generation stamps it bumps.
    pub fn reset(&mut self, cfg: &MachineConfig) {
        self.cycle = 0;
        self.slots_used = 0;
        self.width = cfg.issue_width;
        self.fetch_gate = 0;
        self.sb.reset_all(0);
        self.bp.reset(cfg.bp_entries);
        self.last_busy_cycle = u64::MAX;
        self.started = false;
        self.breakdown = CycleBreakdown::default();
        self.instrs = 0;
        self.bp_lookups = 0;
        self.bp_mispredicts = 0;
    }

    /// Approximate retained heap bytes (arena telemetry).
    pub fn approx_bytes(&self) -> usize {
        self.sb.approx_bytes() + self.bp.approx_bytes()
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    pub fn bp_mispredicts(&self) -> u64 {
        self.bp_mispredicts
    }

    pub fn bp_lookups(&self) -> u64 {
        self.bp_lookups
    }

    /// Switch issue width (normal ↔ replay).
    pub fn set_width(&mut self, w: u64) {
        self.width = w.max(1);
    }

    /// Jump the cycle counter forward (SPT overheads: RF copy, fast
    /// commit); the skipped cycles are attributed as pipeline stalls.
    pub fn advance_to(&mut self, t: u64) {
        if t > self.cycle {
            let g = self.gap_to(t);
            self.breakdown.pipe_stall += g;
            self.breakdown.stall.advance += g;
            self.cycle = t;
            self.slots_used = 0;
        }
    }

    /// Earliest cycle at which an instruction at `depth` reading `regs`
    /// could issue, without issuing anything. Used by the SPT scheduler to
    /// model a *stalled* speculative pipeline: a speculative instruction
    /// whose operands are not ready yet has not issued, so an arriving main
    /// thread does not wait for it.
    pub fn ready_time(&self, depth: u32, regs: impl IntoIterator<Item = u32>) -> u64 {
        // `operands_ready_time` folds in the frame baseline and the floor,
        // so only the cycle counter and fetch gate remain to clamp.
        self.cycle
            .max(self.fetch_gate)
            .max(self.sb.operands_ready_time(depth, regs))
    }

    /// Upper bound of [`Engine::ready_time`] over *any* instruction at
    /// `depth`: cycle counter, fetch gate, and the scoreboard's whole-frame
    /// readiness bound. At or below `t`, the exact gate of the next
    /// instruction is provably ≤ `t` without its operand list.
    pub fn ready_bound(&self, depth: u32) -> u64 {
        self.cycle
            .max(self.fetch_gate)
            .max(self.sb.frame_ready_bound(depth))
    }

    /// Lower bound of [`Engine::ready_time`] that needs no operand list:
    /// the cycle counter, fetch gate and frame baseline alone. Lets the
    /// SPT scheduler prove "cannot issue by cycle `t`" without walking the
    /// next instruction's source registers.
    pub fn ready_floor(&self, depth: u32) -> u64 {
        self.cycle
            .max(self.fetch_gate)
            .max(self.sb.frame_baseline(depth))
    }

    /// Idle cycles between now and `t`, excluding the current cycle if an
    /// instruction already issued in it (it is counted as busy).
    fn gap_to(&self, t: u64) -> u64 {
        let mut gap = t - self.cycle;
        if self.started && self.last_busy_cycle == self.cycle {
            gap = gap.saturating_sub(1);
        }
        gap
    }

    /// All registers become ready at `t` (context copy).
    pub fn reset_context(&mut self, t: u64) {
        self.sb.reset_all(t);
    }

    /// Issue one event with full semantics: operand wait, issue-width
    /// limits, latency (loads via `cache`), branch prediction. Returns the
    /// completion cycle of the event's result.
    pub fn issue(&mut self, ev: &Event, cache: &mut CacheSim, cfg: &MachineConfig) -> u64 {
        // 1. Operand readiness (baseline + per-operand fold, frame located
        // once — see `Scoreboard::operands_ready`).
        let (ready, cause) = self
            .sb
            .operands_ready(ev.depth, ev.srcs.as_slice().iter().map(|r| r.0));

        // 2. Earliest issue cycle.
        let start = self.cycle.max(ready).max(self.fetch_gate);
        if start > self.cycle {
            let gap = self.gap_to(start);
            // Attribute the dominant cause: fetch redirect counts as
            // pipeline; a load-produced operand as D-cache.
            if ready >= self.fetch_gate && cause == ProducerKind::Load {
                self.breakdown.dcache_stall += gap;
            } else {
                self.breakdown.pipe_stall += gap;
                if self.fetch_gate > ready {
                    self.breakdown.stall.fetch_gate += gap;
                } else {
                    self.breakdown.stall.operand += gap;
                }
            }
            self.cycle = start;
            self.slots_used = 0;
        }

        // 3. Structural: issue-width slots.
        let need = ev.slots();
        if self.slots_used + need > self.width {
            self.note_busy();
            self.cycle += 1;
            self.slots_used = 0;
        }
        self.note_busy();
        self.slots_used += need;
        self.instrs += 1;
        let at = self.cycle;

        // 4. Latency.
        let lat = self.latency_of(ev, at, cache, cfg);

        // 5. Scoreboard update.
        if let Some(dst) = ev.dst {
            let kind = if ev.lat == LatClass::Load && ev.executed {
                ProducerKind::Load
            } else {
                ProducerKind::Other
            };
            self.sb.set_ready(ev.dst_depth(), dst.0, at + lat, kind);
        }
        if ev.is_call() {
            // Callee frame registers become available when the call issues.
            self.sb.enter_frame(ev.depth + 1, at + lat);
        }
        if ev.is_ret() {
            self.sb.truncate_below(ev.dst_depth());
        }

        // 6. Branch prediction.
        if let Some(b) = ev.branch {
            if b.conditional {
                self.bp_lookups += 1;
                if !self.bp.predict_and_update(b.taken) {
                    self.bp_mispredicts += 1;
                    self.fetch_gate = at + 1 + cfg.bp_penalty;
                }
            }
        }

        at + lat
    }

    /// Commit one already-computed result from the speculation result
    /// buffer: consumes an issue slot at replay bandwidth, makes the
    /// destination ready immediately, performs no operand wait and no
    /// prediction.
    pub fn commit_slot(&mut self, ev: &Event) -> u64 {
        let need = ev.slots();
        if self.slots_used + need > self.width {
            self.note_busy();
            self.cycle += 1;
            self.slots_used = 0;
        }
        self.note_busy();
        self.slots_used += need;
        self.instrs += 1;
        if let Some(dst) = ev.dst {
            self.sb
                .set_ready(ev.dst_depth(), dst.0, self.cycle, ProducerKind::Other);
        }
        self.cycle
    }

    fn note_busy(&mut self) {
        if !self.started || self.last_busy_cycle != self.cycle {
            self.breakdown.busy += 1;
            self.last_busy_cycle = self.cycle;
            self.started = true;
        }
    }

    fn latency_of(&self, ev: &Event, at: u64, cache: &mut CacheSim, cfg: &MachineConfig) -> u64 {
        if !ev.executed {
            return 1; // predicated-off: occupies the slot only
        }
        match ev.lat {
            LatClass::Alu | LatClass::Spt | LatClass::Nop => cfg.lat_alu,
            LatClass::Mul => cfg.lat_mul,
            LatClass::Div => cfg.lat_div,
            LatClass::Call => cfg.lat_call,
            LatClass::Store => {
                if let Some(m) = ev.mem {
                    // Stores allocate in the cache but their latency is
                    // hidden by the store pipeline.
                    cache.access(m.addr, at);
                }
                cfg.lat_store
            }
            LatClass::Load => {
                if let Some(m) = ev.mem {
                    cache.access(m.addr, at)
                } else {
                    cfg.lat_alu
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_interp::{Cursor, DecodedProgram, Memory};
    use spt_sir::{BinOp, Program, ProgramBuilder};

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    /// Run a whole program through a single engine; return (cycles, instrs).
    fn time_program(prog: &Program) -> (u64, u64, CycleBreakdown) {
        let c = cfg();
        let mut eng = Engine::new(&c);
        let mut cache = CacheSim::new(&c);
        let mut mem = Memory::for_program(prog);
        let dec = DecodedProgram::new(prog);
        let mut cur = Cursor::at_entry(&dec);
        while let Some(ev) = cur.step(&mut mem) {
            eng.issue(&ev, &mut cache, &c);
        }
        (eng.cycle(), eng.instrs(), eng.breakdown())
    }

    fn straightline(n: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("m", 0);
        // Independent constants: no data dependences.
        for _ in 0..n {
            let r = f.reg();
            f.const_(r, 1);
        }
        f.ret(None);
        let id = f.finish();
        pb.finish(id, 0)
    }

    #[test]
    fn independent_instructions_issue_six_wide() {
        // 60 independent consts + ret: ~11 cycles at width 6.
        let (cycles, instrs, _) = time_program(&straightline(60));
        assert_eq!(instrs, 61);
        assert!(cycles <= 12, "cycles = {cycles}");
        assert!(cycles >= 9);
    }

    #[test]
    fn dependent_chain_serializes() {
        // r_{i+1} = r_i + r_i: a serial dependence chain of 40 adds.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("m", 0);
        let mut prev = f.const_reg(1);
        for _ in 0..40 {
            let nxt = f.reg();
            f.bin(BinOp::Add, nxt, prev, prev);
            prev = nxt;
        }
        f.ret(Some(prev));
        let id = f.finish();
        let prog = pb.finish(id, 0);
        let (cycles, _, _) = time_program(&prog);
        // Must take at least one cycle per chained add.
        assert!(cycles >= 40, "cycles = {cycles}");
    }

    #[test]
    fn mul_div_latencies_respected() {
        let c = cfg();
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("m", 0);
        let a = f.const_reg(5);
        let b = f.reg();
        f.bin(BinOp::Div, b, a, a);
        let d = f.reg();
        f.bin(BinOp::Add, d, b, b); // waits for div
        f.ret(Some(d));
        let id = f.finish();
        let prog = pb.finish(id, 0);
        let (cycles, _, bd) = time_program(&prog);
        assert!(cycles >= c.lat_div, "cycles = {cycles}");
        assert!(bd.pipe_stall > 0, "div latency must appear as pipe stall");
    }

    #[test]
    fn cold_load_counts_dcache_stall() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("m", 0);
        let base = f.const_reg(0);
        let v = f.reg();
        f.load(v, base, 0);
        let d = f.reg();
        f.bin(BinOp::Add, d, v, v); // waits for the 150-cycle miss
        f.ret(Some(d));
        let id = f.finish();
        let prog = pb.finish(id, 8);
        let (cycles, _, bd) = time_program(&prog);
        assert!(cycles >= 150);
        assert!(bd.dcache_stall >= 140, "dcache_stall = {}", bd.dcache_stall);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let (cycles, _, bd) = time_program(&straightline(100));
        // busy + stalls should approximate total cycles (within the final
        // in-flight window).
        assert!(bd.total() <= cycles + 2);
        assert!(bd.total() + 2 >= cycles);
        assert_eq!(bd.stall.total(), bd.pipe_stall);
    }

    #[test]
    fn advance_to_counts_pipeline_stall() {
        let c = cfg();
        let mut eng = Engine::new(&c);
        eng.advance_to(10);
        assert_eq!(eng.cycle(), 10);
        assert_eq!(eng.breakdown().pipe_stall, 10);
        assert_eq!(eng.breakdown().stall.advance, 10);
        eng.advance_to(5); // no-op backwards
        assert_eq!(eng.cycle(), 10);
    }

    #[test]
    fn commit_slot_uses_bandwidth_only() {
        let c = cfg();
        let mut eng = Engine::new(&c);
        eng.set_width(12);
        let prog = straightline(1);
        let mut mem = Memory::for_program(&prog);
        let dec = DecodedProgram::new(&prog);
        let mut cur = Cursor::at_entry(&dec);
        let ev = cur.step(&mut mem).unwrap();
        // 24 commits at width 12 -> 2 cycles of bandwidth.
        for _ in 0..24 {
            eng.commit_slot(&ev);
        }
        assert!(eng.cycle() <= 2, "cycle = {}", eng.cycle());
        assert_eq!(eng.instrs(), 24);
    }

    #[test]
    fn branch_mispredict_applies_penalty() {
        let c = cfg();
        // Alternating unpredictable-at-first branch: ensure the engine ever
        // applies fetch gating (mispredicts > 0 on random-ish pattern).
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("m", 0);
        let i = f.reg();
        let n = f.reg();
        let body = f.new_block();
        let exit = f.new_block();
        f.const_(i, 0);
        f.const_(n, 40);
        f.jmp(body);
        f.switch_to(body);
        f.addi(i, i, 1);
        // cond = i & 1 — alternates; plus loop branch.
        let one = f.const_reg(1);
        let parity = f.reg();
        f.bin(BinOp::And, parity, i, one);
        let c2 = f.reg();
        f.bin(BinOp::CmpLt, c2, i, n);
        f.br(c2, body, exit);
        f.switch_to(exit);
        f.ret(None);
        let id = f.finish();
        let prog = pb.finish(id, 0);
        let mut eng = Engine::new(&c);
        let mut cache = CacheSim::new(&c);
        let mut mem = Memory::for_program(&prog);
        let dec = DecodedProgram::new(&prog);
        let mut cur = Cursor::at_entry(&dec);
        while let Some(ev) = cur.step(&mut mem) {
            eng.issue(&ev, &mut cache, &c);
        }
        assert!(eng.bp_lookups() >= 40);
        // The loop-exit branch at minimum mispredicts once.
        assert!(eng.bp_mispredicts() >= 1);
    }
}
