//! Property tests for the SPT simulator's architectural correctness.
//!
//! The central contract of the SPT architecture (§3): *no matter where the
//! compiler places `spt_fork`, execution preserves sequential semantics* —
//! the dependence checkers catch every violation and the recovery
//! mechanisms repair it. So we generate random loop bodies (statement
//! soup: ALU ops, loads, stores, guards over a small memory region, with
//! arbitrary cross-iteration dependences) and insert the fork at an
//! arbitrary position — including positions no sane compiler would pick —
//! and require the SPT machine to produce exactly the sequential result
//! under every recovery policy and checking mode.

use proptest::prelude::*;
use spt_interp::run;
use spt_mach::{MachineConfig, RecoveryKind, RegCheckPolicy};
use spt_sim::{LoopAnnot, LoopAnnotations, SptSim};
use spt_sir::{BinOp, BlockId, Program, ProgramBuilder, Reg};

const FUEL: u64 = 2_000_000;
const N_REGS: u32 = 6;
const MEM: usize = 32;

/// One random statement of the loop body.
#[derive(Clone, Debug)]
enum Stmt {
    Alu {
        op: u8,
        dst: u8,
        a: u8,
        b: u8,
    },
    Load {
        dst: u8,
        base: u8,
        off: u8,
    },
    Store {
        src: u8,
        base: u8,
        off: u8,
    },
    GuardedAlu {
        g: u8,
        op: u8,
        dst: u8,
        a: u8,
        b: u8,
    },
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..6u8, 0..N_REGS as u8, 0..N_REGS as u8, 0..N_REGS as u8)
            .prop_map(|(op, dst, a, b)| Stmt::Alu { op, dst, a, b }),
        (0..N_REGS as u8, 0..N_REGS as u8, 0..8u8).prop_map(|(dst, base, off)| Stmt::Load {
            dst,
            base,
            off
        }),
        (0..N_REGS as u8, 0..N_REGS as u8, 0..8u8).prop_map(|(src, base, off)| Stmt::Store {
            src,
            base,
            off
        }),
        (
            0..N_REGS as u8,
            0..6u8,
            0..N_REGS as u8,
            0..N_REGS as u8,
            0..N_REGS as u8
        )
            .prop_map(|(g, op, dst, a, b)| Stmt::GuardedAlu { g, op, dst, a, b }),
    ]
}

fn alu_op(code: u8) -> BinOp {
    match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Xor,
        3 => BinOp::And,
        4 => BinOp::Mul,
        _ => BinOp::Or,
    }
}

/// Build: init regs; loop `trip` times over the random body with the fork
/// inserted at `fork_at`; kill on exit; return a checksum of regs + memory.
fn build(body: &[Stmt], trip: u8, fork_at: usize, inits: &[i64]) -> Program {
    let mut pb = ProgramBuilder::new();
    for a in 0..MEM as u64 {
        pb.datum(a, (a as i64) * 3 - 7);
    }
    let mut f = pb.func("main", 0);
    // r0..r5 working registers, then counter/limit.
    let regs: Vec<Reg> = (0..N_REGS).map(|_| f.reg()).collect();
    let i = f.reg();
    let nn = f.reg();
    let bodyb = f.new_block();
    let exit = f.new_block();
    for (k, r) in regs.iter().enumerate() {
        f.const_(*r, inits[k % inits.len()]);
    }
    f.const_(i, 0);
    f.const_(nn, trip as i64);
    f.jmp(bodyb);
    f.switch_to(bodyb);
    let fork_at = fork_at.min(body.len());
    for (k, s) in body.iter().enumerate() {
        if k == fork_at {
            f.spt_fork(bodyb);
        }
        match *s {
            Stmt::Alu { op, dst, a, b } => f.bin(
                alu_op(op),
                regs[dst as usize % regs.len()],
                regs[a as usize % regs.len()],
                regs[b as usize % regs.len()],
            ),
            Stmt::Load { dst, base, off } => f.load(
                regs[dst as usize % regs.len()],
                regs[base as usize % regs.len()],
                off as i64,
            ),
            Stmt::Store { src, base, off } => f.store(
                regs[src as usize % regs.len()],
                regs[base as usize % regs.len()],
                off as i64,
            ),
            Stmt::GuardedAlu { g, op, dst, a, b } => {
                f.guard_when(regs[g as usize % regs.len()]);
                f.bin(
                    alu_op(op),
                    regs[dst as usize % regs.len()],
                    regs[a as usize % regs.len()],
                    regs[b as usize % regs.len()],
                );
                f.unguard();
            }
        }
    }
    if fork_at >= body.len() {
        f.spt_fork(bodyb);
    }
    f.addi(i, i, 1);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, bodyb, exit);
    f.switch_to(exit);
    f.spt_kill();
    // Checksum registers and a memory sample.
    let sum = f.reg();
    f.const_(sum, 0);
    for r in &regs {
        let t = f.reg();
        f.bin(BinOp::Xor, t, sum, *r);
        f.mov(sum, t);
    }
    for a in 0..4 {
        let base = f.const_reg(a * 7 % MEM as i64);
        let v = f.reg();
        f.load(v, base, 0);
        let t = f.reg();
        f.bin(BinOp::Add, t, sum, v);
        f.mov(sum, t);
    }
    f.ret(Some(sum));
    let id = f.finish();
    pb.finish(id, MEM)
}

fn spt_result(prog: &Program, cfg: MachineConfig) -> (Option<i64>, bool) {
    let annots = LoopAnnotations {
        loops: vec![LoopAnnot {
            id: 0,
            func: prog.entry,
            blocks: vec![BlockId(1)],
            fork_start: Some(BlockId(1)),
        }],
    };
    let rep = SptSim::new(prog, cfg, annots).run(FUEL);
    (rep.ret, rep.out_of_fuel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any fork position, any body: SPT == sequential (default config).
    #[test]
    fn arbitrary_fork_preserves_semantics(
        body in prop::collection::vec(stmt_strategy(), 1..14),
        trip in 1..12u8,
        fork_at in 0..14usize,
        inits in prop::collection::vec(-4..20i64, 1..4),
    ) {
        let prog = build(&body, trip, fork_at, &inits);
        prog.verify().unwrap();
        let (seq, _) = run(&prog, FUEL);
        prop_assume!(!seq.out_of_fuel);
        let (got, oof) = spt_result(&prog, MachineConfig::default());
        prop_assert!(!oof, "SPT ran out of fuel");
        prop_assert_eq!(got, seq.ret);
    }

    /// All recovery policies and checking modes agree with sequential.
    #[test]
    fn all_policies_preserve_semantics(
        body in prop::collection::vec(stmt_strategy(), 1..10),
        trip in 1..10u8,
        fork_at in 0..10usize,
    ) {
        let prog = build(&body, trip, fork_at, &[3, -1]);
        let (seq, _) = run(&prog, FUEL);
        prop_assume!(!seq.out_of_fuel);
        for rec in [RecoveryKind::SrxFc, RecoveryKind::SrxOnly, RecoveryKind::Squash] {
            for chk in [RegCheckPolicy::ValueBased, RegCheckPolicy::MarkBased] {
                let mut m = MachineConfig::default();
                m.recovery = rec;
                m.reg_check = chk;
                let (got, oof) = spt_result(&prog, m);
                prop_assert!(!oof);
                prop_assert_eq!(got, seq.ret, "policy {:?}/{:?}", rec, chk);
            }
        }
    }

    /// Tiny speculation result buffers never break correctness.
    #[test]
    fn small_srb_preserves_semantics(
        body in prop::collection::vec(stmt_strategy(), 1..10),
        trip in 1..10u8,
        fork_at in 0..10usize,
        srb in 2..32usize,
    ) {
        let prog = build(&body, trip, fork_at, &[5]);
        let (seq, _) = run(&prog, FUEL);
        prop_assume!(!seq.out_of_fuel);
        let mut m = MachineConfig::default();
        m.srb_entries = srb;
        let (got, oof) = spt_result(&prog, m);
        prop_assert!(!oof);
        prop_assert_eq!(got, seq.ret);
    }

    /// Widening the fabric never changes architectural state: for any
    /// body/fork placement and N ∈ {2, 4, 8}, the final memory image and
    /// return value match the sequential interpretation word for word.
    #[test]
    fn fabric_width_preserves_memory(
        body in prop::collection::vec(stmt_strategy(), 1..10),
        trip in 1..10u8,
        fork_at in 0..10usize,
    ) {
        let prog = build(&body, trip, fork_at, &[3, -1]);
        let (seq, seq_mem) = run(&prog, FUEL);
        prop_assume!(!seq.out_of_fuel);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: prog.entry,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        for cores in [2usize, 4, 8] {
            let mut m = MachineConfig::default();
            m.cores = cores;
            let (rep, mem) = SptSim::new(&prog, m, annots.clone()).run_with_memory(FUEL);
            prop_assert!(!rep.out_of_fuel, "cores={}", cores);
            prop_assert_eq!(rep.ret, seq.ret, "cores={}", cores);
            for a in 0..MEM as u64 {
                prop_assert_eq!(mem.peek(a), seq_mem.peek(a), "cores={} addr={}", cores, a);
            }
        }
    }

    /// The report's invariants hold on arbitrary runs.
    #[test]
    fn report_invariants(
        body in prop::collection::vec(stmt_strategy(), 1..10),
        trip in 1..10u8,
        fork_at in 0..10usize,
    ) {
        let prog = build(&body, trip, fork_at, &[2, 9]);
        let annots = LoopAnnotations {
            loops: vec![LoopAnnot {
                id: 0,
                func: prog.entry,
                blocks: vec![BlockId(1)],
                fork_start: Some(BlockId(1)),
            }],
        };
        let rep = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
        prop_assert!(rep.fast_commits + rep.replays <= rep.forks + 1);
        prop_assert!(rep.fast_commit_ratio() >= 0.0 && rep.fast_commit_ratio() <= 1.0);
        prop_assert!(rep.misspeculation_ratio() >= 0.0 && rep.misspeculation_ratio() <= 1.0);
        prop_assert!(rep.breakdown.total() <= rep.cycles + 2);
        prop_assert!(rep.spec_misspec <= rep.spec_instrs_checked);
    }
}
