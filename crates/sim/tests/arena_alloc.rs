//! Steady-state allocation audit: once a [`SimArena`] is warm, re-running
//! the same simulation must perform (near-)zero heap allocations — every
//! buffer the run needs comes back out of the arena. The test swaps in a
//! counting global allocator (scoped to this test binary) and compares the
//! cold first run against the warm second run on the same arena.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use spt_mach::MachineConfig;
use spt_sim::{LoopAnnot, LoopAnnotations, SimArena, SptSim};
use spt_sir::{BinOp, BlockId, Program, ProgramBuilder};

/// Counts allocation *events* (alloc + realloc) per thread. Thread-local
/// so the harness's other threads can't perturb the measurement;
/// `try_with` keeps the shim total during TLS teardown.
struct CountingAlloc;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

/// Independent-iteration loop with forks, private stores, and enough
/// work per iteration to exercise the spec-state pool and both caches.
fn parallel_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.reg();
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(nn, n);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    let mut acc = f.reg();
    f.mov(acc, cur);
    for _ in 0..work {
        let nx = f.reg();
        f.bin(BinOp::Add, nx, acc, acc);
        acc = nx;
    }
    f.store(acc, cur, 0);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, n as usize + 4);
    let annots = LoopAnnotations {
        loops: vec![LoopAnnot {
            id: 0,
            func: id,
            blocks: vec![BlockId(1)],
            fork_start: Some(BlockId(1)),
        }],
    };
    (prog, annots)
}

/// Run the kernel cold then warm on one arena; return
/// (cold allocations, warm allocations).
fn measure(iters: i64) -> (u64, u64) {
    let (prog, annots) = parallel_loop(iters, 6);
    let cfg = MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    };
    let mut arena = SimArena::new();
    let sim = SptSim::new_in(&mut arena, 7, &prog, cfg, annots);

    let before_cold = alloc_events();
    let cold = sim.run_in(&mut arena, 5_000_000);
    let cold_allocs = alloc_events() - before_cold;

    let before_warm = alloc_events();
    let warm = sim.run_in(&mut arena, 5_000_000);
    let warm_allocs = alloc_events() - before_warm;

    // Same program, same config: the runs must agree exactly (the arena
    // may not change results), and the kernel must actually speculate.
    assert_eq!(format!("{warm:?}"), format!("{cold:?}"));
    assert!(cold.forks > 0, "kernel must actually speculate");
    (cold_allocs, warm_allocs)
}

#[test]
fn warm_arena_rerun_is_allocation_free_in_steady_state() {
    let (cold_small, warm_small) = measure(64);
    let (_, warm_big) = measure(1024);

    // The warm rerun lives off retained buffers: a small fixed number of
    // allocations (the report's own output vectors plus per-run locals —
    // those belong to the caller, not the arena), far below the cold run,
    // and — the steady-state claim — independent of iteration count.
    assert!(
        warm_small <= 32,
        "warm rerun allocated {warm_small} times (cold: {cold_small})"
    );
    assert!(
        warm_small * 4 <= cold_small,
        "warm rerun ({warm_small}) not clearly cheaper than cold ({cold_small})"
    );
    assert!(
        warm_big <= warm_small + 8,
        "warm allocations grow with iteration count: {warm_small} @64 vs {warm_big} @1024"
    );
}
