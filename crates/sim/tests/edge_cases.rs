//! Edge-case integration tests for the SPT machine: paths that the
//! mainline suite rarely exercises — double forks, divergence kills,
//! speculation running off the program end, kills without speculation,
//! fork at the very last statement, and empty post-fork regions.

use spt_interp::run;
use spt_mach::MachineConfig;
use spt_sim::{LoopAnnot, LoopAnnotations, SptSim};
use spt_sir::{BinOp, BlockId, Program, ProgramBuilder};

const FUEL: u64 = 2_000_000;

fn sim(prog: &Program) -> spt_sim::SptReport {
    let annots = LoopAnnotations {
        loops: vec![LoopAnnot {
            id: 0,
            func: prog.entry,
            blocks: vec![BlockId(1)],
            fork_start: Some(BlockId(1)),
        }],
    };
    SptSim::new(prog, MachineConfig::default(), annots).run(FUEL)
}

fn check(prog: &Program) -> spt_sim::SptReport {
    prog.verify().unwrap();
    let (seq, _) = run(prog, FUEL);
    assert!(!seq.out_of_fuel);
    let rep = sim(prog);
    assert!(!rep.out_of_fuel, "SPT out of fuel");
    assert_eq!(rep.ret, seq.ret, "SPT diverged from sequential");
    rep
}

/// Loop body with TWO forks: the second must be ignored (one speculative
/// pipeline).
#[test]
fn double_fork_ignored() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.const_reg(20);
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    f.spt_fork(body); // second fork while speculation is live
    f.store(cur, cur, 0);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, 32);
    let rep = check(&prog);
    assert!(
        rep.forks_ignored > 0,
        "second fork must be counted as ignored"
    );
}

/// `spt_kill` with no speculative thread active is a harmless no-op.
#[test]
fn kill_without_speculation() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    f.spt_kill();
    let r = f.const_reg(7);
    f.spt_kill();
    f.ret(Some(r));
    let id = f.finish();
    let prog = pb.finish(id, 0);
    let rep = check(&prog);
    assert_eq!(rep.kills, 0, "no speculative thread existed to kill");
}

/// Fork as the very last body statement (empty post-fork region): the main
/// thread arrives at the start-point almost immediately.
#[test]
fn fork_at_body_end() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let acc = f.reg();
    let nn = f.const_reg(30);
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(acc, 0);
    f.jmp(body);
    f.switch_to(body);
    f.bin(BinOp::Add, acc, acc, i);
    f.addi(i, i, 1);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.spt_fork(body);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(acc));
    let id = f.finish();
    let prog = pb.finish(id, 0);
    let rep = check(&prog);
    assert_eq!(rep.ret, Some((0..30).sum::<i64>()));
    assert!(rep.forks > 0);
}

/// Fork directly at the loop's first statement (empty pre-fork region):
/// maximum speculation depth, every cross-iteration value is a violation
/// candidate.
#[test]
fn fork_at_body_start() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let acc = f.reg();
    let nn = f.const_reg(25);
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(acc, 0);
    f.jmp(body);
    f.switch_to(body);
    f.spt_fork(body);
    f.bin(BinOp::Add, acc, acc, i);
    f.addi(i, i, 1);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(acc));
    let id = f.finish();
    let prog = pb.finish(id, 0);
    let rep = check(&prog);
    // i and acc both violated every iteration: replays dominate.
    assert!(rep.replays > 0);
}

/// The speculative thread runs off the end of the program (executes the
/// final `ret` speculatively); commit must adopt the halted context.
#[test]
fn speculation_past_program_end() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.const_reg(3);
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    // Long independent tail so the spec thread (next iteration) can reach
    // the loop exit and the final ret while main is still here.
    let mut t = cur;
    for _ in 0..40 {
        let x = f.reg();
        f.bin(BinOp::Add, x, t, cur);
        t = x;
    }
    f.store(t, cur, 0);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    // Deliberately NO spt_kill: the spec thread for the phantom 4th
    // iteration is superseded by commits/arrival logic instead.
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, 16);
    let rep = check(&prog);
    assert_eq!(rep.ret, Some(3));
    let _ = rep;
}

/// A data-dependent branch inside the loop (not if-converted): when the
/// speculative thread takes the wrong arm, replay must stop at the
/// divergence and kill.
#[test]
fn control_divergence_kills_replay() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let acc = f.reg();
    let sel = f.reg();
    let nn = f.const_reg(40);
    let head = f.new_block();
    let left = f.new_block();
    let right = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(acc, 0);
    f.const_(sel, 0);
    f.jmp(head);
    f.switch_to(head);
    f.spt_fork(head);
    // sel flips depending on acc, which the spec thread reads stale: its
    // branch goes the wrong way regularly.
    let one = f.const_reg(1);
    f.bin(BinOp::And, sel, acc, one);
    f.br(sel, left, right);
    f.switch_to(left);
    f.addi(acc, acc, 3);
    f.jmp(latch);
    f.switch_to(right);
    f.addi(acc, acc, 1);
    f.jmp(latch);
    f.switch_to(latch);
    f.addi(i, i, 1);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, head, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(acc));
    let id = f.finish();
    let prog = pb.finish(id, 0);
    prog.verify().unwrap();
    let (seq, _) = run(&prog, FUEL);
    let annots = LoopAnnotations {
        loops: vec![LoopAnnot {
            id: 0,
            func: id,
            blocks: vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)],
            fork_start: Some(BlockId(1)),
        }],
    };
    let rep = SptSim::new(&prog, MachineConfig::default(), annots).run(FUEL);
    assert_eq!(rep.ret, seq.ret);
    assert!(
        rep.divergence_kills > 0,
        "wrong-path speculation must be killed during replay"
    );
}

/// SRB of size 1: the speculative thread stalls after a single entry;
/// everything still works.
#[test]
fn srb_of_one() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.const_reg(15);
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    f.store(cur, cur, 0);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, 32);
    let (seq, _) = run(&prog, FUEL);
    let mut m = MachineConfig::default();
    m.srb_entries = 1;
    let annots = LoopAnnotations::empty();
    let rep = SptSim::new(&prog, m, annots).run(FUEL);
    assert_eq!(rep.ret, seq.ret);
}

/// Speculation inside a callee (the loop lives one call level down).
#[test]
fn speculation_in_callee() {
    let mut pb = ProgramBuilder::new();
    let worker = pb.declare("worker", 1);
    let mut f = pb.func("main", 0);
    let n = f.const_reg(12);
    let r1 = f.reg();
    f.call(worker, &[n], Some(r1));
    let r2 = f.reg();
    f.call(worker, &[n], Some(r2));
    let out = f.reg();
    f.bin(BinOp::Add, out, r1, r2);
    f.ret(Some(out));
    let main = f.finish();
    let mut g = pb.build(worker);
    let trip = g.param(0);
    let i = g.reg();
    let acc = g.reg();
    let body = g.new_block();
    let exit = g.new_block();
    g.const_(i, 0);
    g.const_(acc, 0);
    g.jmp(body);
    g.switch_to(body);
    let cur = g.reg();
    g.mov(cur, i);
    g.addi(i, i, 1);
    g.spt_fork(body);
    let t = g.reg();
    g.bin(BinOp::Mul, t, cur, cur);
    g.bin(BinOp::Add, acc, acc, t);
    let c = g.reg();
    g.bin(BinOp::CmpLt, c, i, trip);
    g.br(c, body, exit);
    g.switch_to(exit);
    g.spt_kill();
    g.ret(Some(acc));
    g.finish();
    let prog = pb.finish(main, 8);
    prog.verify().unwrap();
    let (seq, _) = run(&prog, FUEL);
    let rep = SptSim::new(&prog, MachineConfig::default(), LoopAnnotations::empty()).run(FUEL);
    assert_eq!(rep.ret, seq.ret);
    assert!(rep.forks > 10, "both invocations speculate");
}

/// Zero-trip loop: the body never executes, no fork ever fires.
#[test]
fn zero_trip_loop() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.const_reg(0);
    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.jmp(head);
    f.switch_to(head);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(body);
    f.spt_fork(body);
    f.addi(i, i, 1);
    f.jmp(head);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, 0);
    let rep = check(&prog);
    assert_eq!(rep.forks, 0);
    assert_eq!(rep.ret, Some(0));
}
