//! Reset-vs-fresh lockstep: every run through a *warm* [`SimArena`] must be
//! observationally identical to the same run through a brand-new arena —
//! same report, same trace bytes. The warm path exercises every `reset`
//! method (memory, caches, predictor, scoreboard, cursor slab, SSB, memo,
//! spec-state pool); the fresh path is the trivially-correct construction
//! they all claim equivalence with.

use proptest::prelude::*;
use spt_mach::MachineConfig;
use spt_sim::{simulate_baseline_in, LoopAnnot, LoopAnnotations, SimArena, SptSim};
use spt_sir::{BinOp, BlockId, Program, ProgramBuilder};
use spt_trace::StreamSink;

const FUEL: u64 = 5_000_000;

/// Independent iterations: induction advanced pre-fork, body private.
fn parallel_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.reg();
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(nn, n);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    let mut acc = f.reg();
    f.mov(acc, cur);
    for _ in 0..work {
        let nx = f.reg();
        f.bin(BinOp::Add, nx, acc, acc);
        acc = nx;
    }
    f.store(acc, cur, 0);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, n as usize + 4);
    (prog, one_loop_annot(id))
}

/// Serial chain through `acc`: every speculative thread is violated.
fn serial_loop(n: i64, work: usize) -> (Program, LoopAnnotations) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.reg();
    let acc = f.reg();
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(nn, n);
    f.const_(acc, 1);
    f.jmp(body);
    f.switch_to(body);
    f.addi(i, i, 1);
    f.spt_fork(body);
    for _ in 0..work {
        let one = f.const_reg(1);
        let t = f.reg();
        f.bin(BinOp::Add, t, acc, one);
        f.mov(acc, t);
    }
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(acc));
    let id = f.finish();
    let prog = pb.finish(id, 4);
    (prog, one_loop_annot(id))
}

/// Iteration i stores mem[i+1]; iteration i+1 loads it early: a true
/// cross-iteration memory dependence (SSB / LAB / replay paths).
fn chained_store_loop(n: i64) -> (Program, LoopAnnotations) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.reg();
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(nn, n);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    let v = f.reg();
    f.load(v, cur, 0);
    let t = f.reg();
    let one = f.const_reg(1);
    f.bin(BinOp::Add, t, v, one);
    f.store(t, cur, 1);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    let out = f.reg();
    let basen = f.const_reg(n);
    f.load(out, basen, 0);
    f.ret(Some(out));
    let id = f.finish();
    let prog = pb.finish(id, n as usize + 24);
    (prog, one_loop_annot(id))
}

/// Several helper functions called from the loop body: exercises the
/// decoded-program function table and call-frame depth beyond what the
/// single-function kernels touch.
fn multi_func_loop(n: i64) -> (Program, LoopAnnotations) {
    let mut pb = ProgramBuilder::new();
    // helper k: x -> x*2 + k, built before main so main can call them.
    let mut helpers = Vec::new();
    for k in 0..4i64 {
        let mut h = pb.func("helper", 1);
        let x = h.param(0);
        let t = h.reg();
        h.bin(BinOp::Add, t, x, x);
        let kk = h.const_reg(k);
        let r = h.reg();
        h.bin(BinOp::Add, r, t, kk);
        h.ret(Some(r));
        helpers.push(h.finish());
    }
    let mut f = pb.func("main", 0);
    let i = f.reg();
    let nn = f.reg();
    let body = f.new_block();
    let exit = f.new_block();
    f.const_(i, 0);
    f.const_(nn, n);
    f.jmp(body);
    f.switch_to(body);
    let cur = f.reg();
    f.mov(cur, i);
    f.addi(i, i, 1);
    f.spt_fork(body);
    let mut v = f.reg();
    f.mov(v, cur);
    for &h in &helpers {
        let r = f.reg();
        f.call(h, &[v], Some(r));
        v = r;
    }
    f.store(v, cur, 0);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, body, exit);
    f.switch_to(exit);
    f.spt_kill();
    f.ret(Some(i));
    let id = f.finish();
    let prog = pb.finish(id, n as usize + 4);
    (prog, one_loop_annot(id))
}

fn one_loop_annot(func: spt_sir::FuncId) -> LoopAnnotations {
    LoopAnnotations {
        loops: vec![LoopAnnot {
            id: 0,
            func,
            blocks: vec![BlockId(1)],
            fork_start: Some(BlockId(1)),
        }],
    }
}

fn cfg(cores: usize) -> MachineConfig {
    MachineConfig {
        cores,
        ..MachineConfig::default()
    }
}

/// Run one SPT item through `arena` and return (report debug string,
/// trace bytes). The Debug string covers every report field, so equality
/// on it is equality on the whole report.
fn spt_run(
    arena: &mut SimArena,
    fp: u64,
    prog: &Program,
    annots: &LoopAnnotations,
    cores: usize,
) -> (String, Vec<u8>) {
    let sim = SptSim::new_in(arena, fp, prog, cfg(cores), annots.clone());
    let mut sink = StreamSink::new(Vec::new());
    let rep = sim.run_traced_in(arena, FUEL, &mut sink);
    arena.put_decoded(fp, sim.into_decoded());
    (format!("{rep:?}"), sink.into_inner())
}

fn baseline_run(arena: &mut SimArena, fp: u64, prog: &Program, annots: &LoopAnnotations) -> String {
    let rep = simulate_baseline_in(arena, fp, prog, &cfg(1), annots, FUEL);
    format!("{rep:?}")
}

/// Drive `items` through one warm arena and, in lockstep, each item
/// through its own fresh arena; every pair must match exactly.
fn assert_lockstep(items: &[(u64, Program, LoopAnnotations, usize)]) {
    let mut warm = SimArena::new();
    for (fp, prog, annots, cores) in items {
        let (fresh_rep, fresh_trace) = spt_run(&mut SimArena::new(), *fp, prog, annots, *cores);
        let (warm_rep, warm_trace) = spt_run(&mut warm, *fp, prog, annots, *cores);
        assert_eq!(warm_rep, fresh_rep, "SPT report diverged on fp={fp}");
        assert_eq!(warm_trace, fresh_trace, "trace bytes diverged on fp={fp}");

        let fresh_base = baseline_run(&mut SimArena::new(), *fp, prog, annots);
        let warm_base = baseline_run(&mut warm, *fp, prog, annots);
        assert_eq!(warm_base, fresh_base, "baseline report diverged on fp={fp}");
    }
}

/// Pinned: a later item with *more functions* than anything the arena has
/// seen must not inherit stale decode or frame state.
#[test]
fn warm_arena_handles_program_with_more_functions() {
    let (small, sa) = parallel_loop(24, 4);
    let (multi, ma) = multi_func_loop(32);
    assert_lockstep(&[(1, small, sa, 4), (2, multi, ma, 4)]);
}

/// Pinned: a later item with a *larger memory image* must see every word
/// of the new image, not a stale prefix or leftover suffix.
#[test]
fn warm_arena_handles_growing_then_shrinking_memory() {
    let (small, sa) = parallel_loop(16, 4);
    let (big, ba) = parallel_loop(256, 4);
    let items = vec![
        (10, small.clone(), sa.clone(), 2),
        (11, big, ba, 2),
        (10, small, sa, 2),
    ];
    assert_lockstep(&items);
}

/// Pinned: deeper scoreboard/replay churn (violating loops) after a
/// fast-commit-only item, then back: generation stamps must isolate runs.
#[test]
fn warm_arena_handles_deeper_scoreboard_and_replay_use() {
    let (par, pa) = parallel_loop(40, 2);
    let (ser, sea) = serial_loop(48, 10);
    let (chain, ca) = chained_store_loop(40);
    let items = vec![
        (20, par.clone(), pa.clone(), 2),
        (21, ser, sea, 8),
        (22, chain, ca, 4),
        (20, par, pa, 2),
    ];
    assert_lockstep(&items);
}

/// Pinned: the sweep's actual access pattern — one program swept over the
/// core counts of the paper's scaling figure, decode reused across runs.
#[test]
fn warm_arena_core_sweep_matches_fresh() {
    let (prog, annots) = chained_store_loop(32);
    let items: Vec<_> = [2usize, 4, 8]
        .iter()
        .map(|&c| (30u64, prog.clone(), annots.clone(), c))
        .collect();
    assert_lockstep(&items);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random 3-item sweeps over the three kernel shapes: warm-arena runs
    /// must equal fresh-arena runs item for item, byte for byte.
    #[test]
    fn prop_warm_arena_is_bit_identical_to_fresh(
        seq in proptest::collection::vec(
            (0usize..3, 8i64..64, 1usize..10, prop_oneof![Just(2usize), Just(4), Just(8)]),
            1..4,
        ),
    ) {
        let items: Vec<_> = seq
            .iter()
            .enumerate()
            .map(|(idx, &(kind, n, work, cores))| {
                let (prog, annots) = match kind {
                    0 => parallel_loop(n, work),
                    1 => serial_loop(n, work),
                    _ => chained_store_loop(n),
                };
                (idx as u64, prog, annots, cores)
            })
            .collect();
        assert_lockstep(&items);
    }
}
