//! End-to-end integration: the full profile → compile → simulate pipeline
//! on kernels and benchmarks, checking semantics preservation and
//! paper-shaped results.

use spt::{evaluate_program, evaluate_workload, RunConfig};
use spt_workloads::kernels::{array_map, parser_free_loop, svp_loop};
use spt_workloads::{benchmark, Scale};

fn cfg() -> RunConfig {
    let mut c = RunConfig::default();
    c.fuel = 60_000_000;
    c
}

#[test]
fn parallel_kernel_speeds_up() {
    let prog = array_map(500, 20);
    let out = evaluate_program("array_map", &prog, &cfg());
    assert!(out.semantics_ok());
    assert!(!out.spt.out_of_fuel);
    assert!(
        out.speedup() > 1.25,
        "array_map speedup {} too low",
        out.speedup()
    );
    assert!(out.spt.fast_commit_ratio() > 0.5);
}

#[test]
fn parser_figure1_loop_end_to_end() {
    let prog = parser_free_loop(800);
    let out = evaluate_program("parser_free", &prog, &cfg());
    assert!(out.semantics_ok());
    assert_eq!(out.baseline.ret, Some(800));
    assert!(out.spt.forks > 200, "forks {}", out.spt.forks);
    // Shape target: substantial loop-level gain.
    let ls = out.loop_speedups();
    assert!(!ls.is_empty());
    assert!(ls[0] > 1.15, "loop speedup {}", ls[0]);
}

#[test]
fn svp_figure5_loop_end_to_end() {
    let prog = svp_loop(1500);
    let out = evaluate_program("svp", &prog, &cfg());
    assert!(out.semantics_ok());
    // The SVP-transformed loop must actually speculate successfully.
    assert!(out.spt.forks > 100);
    assert!(
        out.spt.fast_commit_ratio() > 0.5,
        "prediction should make most threads violation-free, got {}",
        out.spt.fast_commit_ratio()
    );
}

#[test]
fn svp_beats_no_svp_on_predictable_recurrence() {
    let prog = svp_loop(1500);
    let on = evaluate_program("svp-on", &prog, &cfg());
    let mut c = cfg();
    c.compile.enable_svp = false;
    let off = evaluate_program("svp-off", &prog, &c);
    assert!(on.semantics_ok() && off.semantics_ok());
    assert!(
        on.speedup() > off.speedup(),
        "SVP {} should beat no-SVP {}",
        on.speedup(),
        off.speedup()
    );
}

#[test]
fn representative_benchmarks_preserve_semantics() {
    for name in ["parsers", "gccs", "vortexs"] {
        let w = benchmark(name, Scale::Test);
        let out = evaluate_workload(&w, &cfg());
        assert!(out.semantics_ok(), "{name} diverged");
        assert!(!out.spt.out_of_fuel, "{name} ran out of fuel");
    }
}

#[test]
fn vortex_shows_no_gain_parser_does() {
    let parsers = evaluate_workload(&benchmark("parsers", Scale::Test), &cfg());
    let vortexs = evaluate_workload(&benchmark("vortexs", Scale::Test), &cfg());
    assert!(
        parsers.speedup() > vortexs.speedup(),
        "parser {} must beat vortex {}",
        parsers.speedup(),
        vortexs.speedup()
    );
    assert!(
        vortexs.speedup() < 1.05,
        "vortex speedup {} should be ~0",
        vortexs.speedup()
    );
    assert!(
        parsers.speedup() > 1.05,
        "parser speedup {} should be solid",
        parsers.speedup()
    );
}

#[test]
fn compiled_programs_always_verify() {
    for name in ["bzip2s", "mcfs", "twolfs"] {
        let w = benchmark(name, Scale::Test);
        let out = evaluate_workload(&w, &cfg());
        out.compiled.program.verify().unwrap();
    }
}
