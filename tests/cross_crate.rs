//! Cross-crate integration below the facade level: hand-wired pipelines
//! exercising specific interactions (compiler output → simulator input,
//! policy ablations, annotation alignment).

use spt::RunConfig;
use spt_compiler::{compile, CompileOptions};
use spt_mach::{MachineConfig, RecoveryKind, RegCheckPolicy};
use spt_sim::{simulate_baseline, LoopAnnot, LoopAnnotations, SptSim};
use spt_workloads::kernels::array_map;
use spt_workloads::{benchmark, Scale};

const FUEL: u64 = 60_000_000;

fn annots(compiled: &spt_compiler::CompileResult) -> LoopAnnotations {
    LoopAnnotations {
        loops: compiled
            .loops
            .iter()
            .enumerate()
            .map(|(i, l)| LoopAnnot {
                id: i,
                func: l.func,
                blocks: vec![l.body_block],
                fork_start: Some(l.body_block),
            })
            .collect(),
    }
}

#[test]
fn recovery_policies_all_preserve_semantics() {
    let w = benchmark("gccs", Scale::Test);
    let compiled = compile(&w.program, &CompileOptions::default());
    let an = annots(&compiled);
    let base = simulate_baseline(
        &w.program,
        &MachineConfig::default(),
        &LoopAnnotations::empty(),
        FUEL,
    );
    for rec in [
        RecoveryKind::SrxFc,
        RecoveryKind::SrxOnly,
        RecoveryKind::Squash,
    ] {
        let mut m = MachineConfig::default();
        m.recovery = rec;
        let rep = SptSim::new(&compiled.program, m, an.clone()).run(FUEL);
        assert_eq!(rep.ret, base.ret, "{rec:?} diverged");
        assert!(!rep.out_of_fuel);
    }
}

#[test]
fn selective_reexecution_beats_squash_on_the_suite_shape() {
    // The paper's key architectural claim: keeping correct speculative
    // results (SRX+FC) outperforms trashing them (squash).
    let w = benchmark("gccs", Scale::Test);
    let compiled = compile(&w.program, &CompileOptions::default());
    let an = annots(&compiled);
    let srx = SptSim::new(&compiled.program, MachineConfig::default(), an.clone()).run(FUEL);
    let mut m = MachineConfig::default();
    m.recovery = RecoveryKind::Squash;
    let squash = SptSim::new(&compiled.program, m, an).run(FUEL);
    assert!(
        srx.cycles <= squash.cycles,
        "SRX {} must not lose to squash {}",
        srx.cycles,
        squash.cycles
    );
}

#[test]
fn value_based_checking_fast_commits_at_least_as_often_as_mark_based() {
    let w = benchmark("twolfs", Scale::Test);
    let compiled = compile(&w.program, &CompileOptions::default());
    let an = annots(&compiled);
    let val = SptSim::new(&compiled.program, MachineConfig::default(), an.clone()).run(FUEL);
    let mut m = MachineConfig::default();
    m.reg_check = RegCheckPolicy::MarkBased;
    let mark = SptSim::new(&compiled.program, m, an).run(FUEL);
    assert_eq!(val.ret, mark.ret);
    assert!(
        val.fast_commits >= mark.fast_commits,
        "value {} vs mark {}",
        val.fast_commits,
        mark.fast_commits
    );
}

#[test]
fn per_loop_stats_align_across_baseline_and_spt() {
    let prog = array_map(400, 12);
    let out = spt::evaluate_program("align", &prog, &RunConfig::default());
    assert_eq!(
        out.baseline_loop_cycles.len(),
        out.spt.per_loop.len(),
        "annotation alignment"
    );
    for (i, pl) in out.spt.per_loop.iter().enumerate() {
        assert_eq!(pl.id, i);
        if pl.forks > 0 {
            assert!(pl.cycles > 0, "loop {i} has forks but no cycles");
        }
    }
}

#[test]
fn srb_sweep_monotone_enough() {
    // Bigger SRBs cannot make things dramatically worse.
    let w = benchmark("parsers", Scale::Test);
    let compiled = compile(&w.program, &CompileOptions::default());
    let an = annots(&compiled);
    let mut cycles = Vec::new();
    for srb in [16usize, 256, 1024] {
        let mut m = MachineConfig::default();
        m.srb_entries = srb;
        let rep = SptSim::new(&compiled.program, m, an.clone()).run(FUEL);
        cycles.push((srb, rep.cycles));
    }
    let c16 = cycles[0].1 as f64;
    let c1024 = cycles[2].1 as f64;
    assert!(
        c1024 <= c16 * 1.05,
        "default SRB {} vs tiny SRB {} cycles",
        c1024,
        c16
    );
}

#[test]
fn unrolling_benefits_tiny_bodies() {
    // gz_crc-style loop: 8-instr body. With unrolling the fork overhead is
    // amortized over 4 iterations.
    use spt_workloads::{emit_loop_func, DepPattern, LoopSpec, MemPattern};
    let mut pb = spt_sir::ProgramBuilder::new();
    let mut spec = LoopSpec::basic("tiny");
    spec.body_alu = 2;
    spec.body_loads = 1;
    spec.body_stores = 0;
    spec.dep = DepPattern::ReductionCheap;
    spec.mem = MemPattern::Array;
    let lf = emit_loop_func(&mut pb, &spec, 64, 512);
    let mut m = pb.func("main", 0);
    let t = m.const_reg(2000);
    let z = m.const_reg(0);
    let r = m.reg();
    m.call(lf, &[t, z], Some(r));
    m.ret(Some(r));
    let main = m.finish();
    let prog = pb.finish(main, 1024);

    let mut on = RunConfig::default();
    on.fuel = FUEL;
    let mut off = on.clone();
    off.compile.enable_unroll = false;
    let out_on = spt::evaluate_program("unroll-on", &prog, &on);
    let out_off = spt::evaluate_program("unroll-off", &prog, &off);
    assert!(out_on.semantics_ok() && out_off.semantics_ok());
    if let Some(l) = out_on.compiled.loops.first() {
        assert!(l.unroll > 1, "tiny body should unroll");
    }
    // Unrolling should not lose; usually it wins.
    assert!(
        out_on.speedup() > out_off.speedup() * 0.95,
        "unroll {} vs none {}",
        out_on.speedup(),
        out_off.speedup()
    );
}
