//! The sweep engine's determinism contract: running the evaluation suite on
//! 1, 2, or 8 workers — or re-running on a warm memo cache — must produce
//! byte-identical serialized outcomes. Only the `RunReport` (wall-clock,
//! cache counters) may differ between runs; `EvalOutcome` never does.

use spt::workloads::Scale;
use spt::{Json, Sweep, ToJson};

fn run_config() -> spt::RunConfig {
    spt::RunConfig::default()
}

/// Serialize a suite's outcomes to the exact bytes a bench binary would
/// emit for them.
fn outcome_bytes(outcomes: &[spt::EvalOutcome]) -> String {
    Json::Array(outcomes.iter().map(|o| o.to_json()).collect()).dump()
}

#[test]
fn eval_suite_identical_across_worker_counts() {
    let cfg = run_config();
    let seq = Sweep::new(1).eval_suite(Scale::Test, &cfg);
    let two = Sweep::new(2).eval_suite(Scale::Test, &cfg);
    let eight = Sweep::new(8).eval_suite(Scale::Test, &cfg);

    let b1 = outcome_bytes(&seq.outcomes);
    let b2 = outcome_bytes(&two.outcomes);
    let b8 = outcome_bytes(&eight.outcomes);
    assert_eq!(b1, b2, "2-worker suite diverged from sequential");
    assert_eq!(b1, b8, "8-worker suite diverged from sequential");

    // The structured report must agree on everything schedule-independent.
    assert_eq!(seq.report.records.len(), eight.report.records.len());
    for (a, b) in seq.report.records.iter().zip(&eight.report.records) {
        assert_eq!(a.name, b.name, "record order must be input order");
        assert_eq!(a.baseline_cycles, b.baseline_cycles);
        assert_eq!(a.spt_cycles, b.spt_cycles);
        assert_eq!(a.semantics_ok, b.semantics_ok);
    }
}

#[test]
fn warm_cache_does_not_change_results() {
    let cfg = run_config();
    let sweep = Sweep::new(4);

    let cold = sweep.eval_suite(Scale::Test, &cfg);
    let warm = sweep.eval_suite(Scale::Test, &cfg);

    assert_eq!(
        outcome_bytes(&cold.outcomes),
        outcome_bytes(&warm.outcomes),
        "memo-cache hits changed the suite outcomes"
    );

    // The second pass must be served entirely from the memo cache (each
    // report's `cache` field counts only its own run).
    assert_eq!(warm.report.cache.misses(), 0, "warm run recomputed a phase");
    assert!(
        warm.report.cache.hits() > 0,
        "warm run did not hit the cache"
    );
    assert!(cold.report.cache.misses() > 0, "cold run should miss");
    for rec in &warm.report.records {
        assert!(
            rec.profile_hit && rec.compile_hit && rec.baseline_hit && rec.spt_hit,
            "{}: phase recomputed on warm cache",
            rec.name
        );
        assert_eq!(
            rec.timings.total_ms(),
            0.0,
            "{}: cached phase billed time",
            rec.name
        );
    }
}

#[test]
fn mixed_experiments_share_the_cache_coherently() {
    // fig8 and fig9 both consume the full suite evaluation; running them on
    // one engine must evaluate each benchmark once and agree exactly.
    let cfg = run_config();
    let sweep = Sweep::new(2);
    let first = sweep.eval_suite(Scale::Test, &cfg);
    let stats_after_first = sweep.memo_stats();
    let second = sweep.eval_suite(Scale::Test, &cfg);
    assert_eq!(
        outcome_bytes(&first.outcomes),
        outcome_bytes(&second.outcomes)
    );
    assert_eq!(
        sweep.memo_stats().misses(),
        stats_after_first.misses(),
        "second experiment recomputed shared phases"
    );
}
