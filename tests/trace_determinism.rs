//! Trace determinism and the fold differential oracle.
//!
//! The tracing contract (see `spt_trace` and DESIGN.md "Observability"):
//! every event is cycle-stamped, never wall-clocked, so the exported
//! trace of a given workload is byte-identical no matter how many sweep
//! workers produced it, and folding a complete trace reproduces the
//! simulator's own speculation counters exactly.

use spt::trace::{chrome_trace, validate_chrome_trace, validate_trace_jsonl};
use spt::{RunConfig, Sweep};
use spt_workloads::kernels::{array_map, parser_free_loop};
use spt_workloads::Scale;

fn cfg() -> RunConfig {
    let mut c = RunConfig::default();
    c.fuel = 20_000_000;
    c
}

#[test]
fn traces_are_byte_identical_across_worker_counts() {
    let cfg = cfg();
    let mut exports: Vec<String> = Vec::new();
    for workers in [1, 2, 8] {
        let sw = Sweep::new(workers);
        let (runs, report) = sw.trace_suite(Scale::Test, &cfg);
        let traces: Vec<_> = runs.iter().map(|r| r.trace.clone()).collect();
        exports.push(chrome_trace(&traces).pretty());
        assert_eq!(report.workers, workers);
        assert!(
            report.histograms.is_some(),
            "traced report carries histograms"
        );
    }
    assert_eq!(exports[0], exports[1], "1 vs 2 workers");
    assert_eq!(exports[1], exports[2], "2 vs 8 workers");
    let n = validate_chrome_trace(&exports[0]).expect("exported trace is schema-valid");
    assert!(n > 100, "suite trace should be substantial, got {n} events");
}

#[test]
fn fold_reproduces_simulator_counters() {
    let cfg = cfg();
    let sw = Sweep::sequential();
    for (name, prog) in [
        ("array_map", array_map(300, 16)),
        ("parser_free", parser_free_loop(400)),
    ] {
        let (run, _) = sw.trace_program(name, &prog, &cfg);
        assert_eq!(run.fold.forks, run.outcome.spt.forks, "{name}: forks");
        assert_eq!(
            run.fold.fast_commits, run.outcome.spt.fast_commits,
            "{name}: fast_commits"
        );
        assert_eq!(run.fold.replays, run.outcome.spt.replays, "{name}: replays");
        assert_eq!(run.fold.kills, run.outcome.spt.kills, "{name}: kills");
        assert_eq!(
            run.fold.forks_ignored, run.outcome.spt.forks_ignored,
            "{name}: forks_ignored"
        );
        assert_eq!(
            run.fold.divergence_kills, run.outcome.spt.divergence_kills,
            "{name}: divergence_kills"
        );
        assert_eq!(
            run.fold.loops_selected as usize,
            run.outcome.compiled.loops.len(),
            "{name}: loops_selected"
        );
    }
}

#[test]
fn traced_run_is_cycle_identical_to_untraced() {
    let cfg = cfg();
    let sw = Sweep::sequential();
    let prog = array_map(250, 12);
    let (run, _) = sw.trace_program("array_map", &prog, &cfg);
    let plain = spt::evaluate_program("array_map", &prog, &cfg);
    assert_eq!(run.outcome.baseline.cycles, plain.baseline.cycles);
    assert_eq!(run.outcome.spt.cycles, plain.spt.cycles);
    assert_eq!(run.outcome.baseline.ret, plain.baseline.ret);
    assert_eq!(run.outcome.spt.ret, plain.spt.ret);
    assert_eq!(run.outcome.spt.breakdown, plain.spt.breakdown);
}

#[test]
fn explain_names_a_violator_for_every_replaying_loop() {
    let cfg = cfg();
    let sw = Sweep::sequential();
    let (runs, _) = sw.trace_suite(Scale::Test, &cfg);
    let mut saw_replays = false;
    for run in &runs {
        let text = spt::report::render_explain(&run.outcome, &run.fold);
        for l in &run.fold.per_loop {
            if l.replay_lengths.count > 0 {
                saw_replays = true;
                assert!(
                    !l.reg_violations.is_empty() || !l.mem_violations.is_empty(),
                    "{}: loop {} replayed {} times but names no violator",
                    run.trace.name,
                    l.loop_id,
                    l.replay_lengths.count
                );
                assert!(
                    text.contains("violating"),
                    "{}: explain report names no violator:\n{text}",
                    run.trace.name
                );
            }
        }
        let jsonl = run.trace.jsonl();
        validate_trace_jsonl(&jsonl).expect("jsonl export is schema-valid");
    }
    assert!(saw_replays, "suite at test scale should exercise replays");
}
