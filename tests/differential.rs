//! Differential oracle: random SIR programs are pushed through the full
//! profile → compile → SPT-simulate pipeline and every stage is checked
//! against the reference interpreter running the *original* program.
//!
//! For each generated program the oracle asserts:
//!
//! 1. the transformed program, on the plain interpreter, produces the same
//!    return value, the same final memory image, and the same stream of
//!    architecturally-executed store events (addr, value) as the original;
//! 2. the SPT fabric running the transformed program at N ∈ {2, 4, 8}
//!    cores commits the same return value and final memory image
//!    (speculative stores drain through the SRB, so any mis-commit shows
//!    up here), and the N=2 machine is bit-deterministic: traced and
//!    untraced runs agree on cycles and counters, and trace bytes are
//!    stable across runs with no ring-fork events;
//! 3. the baseline single-core simulator running the original program also
//!    matches (its timing model must not perturb architectural state).
//!
//! Register state is summarized by the returned checksum: programs xor all
//! live registers into the return value, so a silently-clobbered register
//! diverges the oracle.

use proptest::prelude::*;
use spt::{original_annotations, spt_annotations, CompileOptions, MachineConfig};
use spt_compiler::compile;
use spt_interp::{run_with, Cursor, DecodedProgram, MemoTable, Memory};
use spt_sim::{simulate_baseline_with_memory, SptSim};
use spt_sir::{BinOp, Program, ProgramBuilder, Reg};

const FUEL: u64 = 2_000_000;
const N_REGS: u32 = 5;
const MEM: usize = 24;

/// Loop-body statement alphabet, weighted toward memory traffic so the
/// differential actually exercises store buffering and commit.
#[derive(Clone, Debug)]
enum Stmt {
    Alu(u8, u8, u8, u8),
    Load(u8, u8, u8),
    Store(u8, u8, u8),
    GuardedStore(u8, u8, u8, u8),
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..6u8, 0..N_REGS as u8, 0..N_REGS as u8, 0..N_REGS as u8)
            .prop_map(|(o, d, a, b)| Stmt::Alu(o, d, a, b)),
        (0..N_REGS as u8, 0..N_REGS as u8, 0..6u8).prop_map(|(d, b, o)| Stmt::Load(d, b, o)),
        (0..N_REGS as u8, 0..N_REGS as u8, 0..6u8).prop_map(|(s, b, o)| Stmt::Store(s, b, o)),
        (0..N_REGS as u8, 0..N_REGS as u8, 0..N_REGS as u8, 0..6u8)
            .prop_map(|(g, s, b, o)| Stmt::GuardedStore(g, s, b, o)),
    ]
}

fn op_of(c: u8) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Xor,
        BinOp::And,
        BinOp::Or,
        BinOp::Mul,
    ][c as usize % 6]
}

/// A counted loop over a random body; the exit block folds every register
/// and a sample of memory into the returned checksum.
fn build(body: &[Stmt], trip: u8) -> Program {
    let mut pb = ProgramBuilder::new();
    for a in 0..MEM as u64 {
        pb.datum(a, (a as i64 + 3) * 7);
    }
    let mut f = pb.func("main", 0);
    let regs: Vec<Reg> = (0..N_REGS).map(|_| f.reg()).collect();
    let i = f.reg();
    let nn = f.reg();
    let bodyb = f.new_block();
    let exit = f.new_block();
    for (k, r) in regs.iter().enumerate() {
        f.const_(*r, k as i64 + 1);
    }
    f.const_(i, 0);
    f.const_(nn, trip as i64);
    f.jmp(bodyb);
    f.switch_to(bodyb);
    for s in body {
        match *s {
            Stmt::Alu(o, d, a, b) => f.bin(
                op_of(o),
                regs[d as usize % regs.len()],
                regs[a as usize % regs.len()],
                regs[b as usize % regs.len()],
            ),
            Stmt::Load(d, b, o) => f.load(
                regs[d as usize % regs.len()],
                regs[b as usize % regs.len()],
                o as i64,
            ),
            Stmt::Store(s2, b, o) => f.store(
                regs[s2 as usize % regs.len()],
                regs[b as usize % regs.len()],
                o as i64,
            ),
            Stmt::GuardedStore(g, s2, b, o) => {
                f.guard_when(regs[g as usize % regs.len()]);
                f.store(
                    regs[s2 as usize % regs.len()],
                    regs[b as usize % regs.len()],
                    o as i64,
                );
                f.unguard();
            }
        }
    }
    f.addi(i, i, 1);
    let c = f.reg();
    f.bin(BinOp::CmpLt, c, i, nn);
    f.br(c, bodyb, exit);
    f.switch_to(exit);
    let sum = f.reg();
    f.const_(sum, 0);
    for r in &regs {
        let t = f.reg();
        f.bin(BinOp::Xor, t, sum, *r);
        f.mov(sum, t);
    }
    for a in 0..6i64 {
        let base = f.const_reg(a * 7 % MEM as i64);
        let v = f.reg();
        f.load(v, base, 0);
        let t = f.reg();
        f.bin(BinOp::Add, t, sum, v);
        f.mov(sum, t);
    }
    f.ret(Some(sum));
    let id = f.finish();
    pb.finish(id, MEM)
}

fn lenient_opts() -> CompileOptions {
    let mut o = CompileOptions::default();
    o.min_coverage = 0.0;
    o.min_trip = 1.0;
    o.min_body = 1.0;
    o.min_speedup = 0.0;
    o.profile_fuel = FUEL;
    o
}

fn words(mem: &Memory) -> Vec<i64> {
    (0..mem.len() as u64).map(|a| mem.peek(a)).collect()
}

/// Architecturally-executed store events, in program order.
fn store_trace(prog: &Program, fuel: u64) -> (Option<i64>, Vec<i64>, Vec<(u64, i64)>) {
    let mut stores = Vec::new();
    let (res, mem) = run_with(prog, fuel, |ev| {
        if ev.executed {
            if let Some(m) = ev.mem {
                if m.is_store {
                    stores.push((m.addr, m.value));
                }
            }
        }
    });
    assert!(!res.out_of_fuel, "reference run must terminate");
    (res.ret, words(&mem), stores)
}

/// Like [`store_trace`], but the cursor supersteps through a block memo
/// wherever possible (superstep-on interpretation of the same program).
fn superstepped_store_trace(prog: &Program, fuel: u64) -> (Option<i64>, Vec<i64>, Vec<(u64, i64)>) {
    let dec = DecodedProgram::new(prog);
    let mut cur = Cursor::at_entry(&dec);
    let mut mem = Memory::for_program(prog);
    let mut memo = MemoTable::new(dec.n_flat_blocks() as usize);
    let mut stores = Vec::new();
    let mut steps = 0u64;
    while steps < fuel {
        let n = cur.superstep(&mut mem, &mut memo, fuel - steps, &mut |ev| {
            if ev.executed {
                if let Some(m) = ev.mem {
                    if m.is_store {
                        stores.push((m.addr, m.value));
                    }
                }
            }
        });
        if n > 0 {
            steps += n;
            continue;
        }
        let Some(ev) = cur.step(&mut mem) else { break };
        steps += 1;
        if ev.executed {
            if let Some(m) = ev.mem {
                if m.is_store {
                    stores.push((m.addr, m.value));
                }
            }
        }
    }
    assert!(cur.is_halted(), "superstepped run must terminate");
    (cur.return_value(), words(&mem), stores)
}

/// The full oracle on one concrete program.
///
/// `ctx` (the generated body and trip count, `Debug`-printed) is woven
/// into every assertion message so a proptest failure reproduces in one
/// command: paste the printed body/trip into a deterministic
/// `check_differential` call like the fixed smoke cases below.
fn check_differential(body: &[Stmt], trip: u8) {
    let ctx = format!("body={body:?} trip={trip}");
    let prog = build(body, trip);
    prog.verify().unwrap();

    // Stage 0: the reference — sequential interpretation of the original.
    let (ref_ret, ref_mem, ref_stores) = store_trace(&prog, FUEL);

    // Stage 1: compile, then re-interpret the transformed program.
    let compiled = compile(&prog, &lenient_opts());
    compiled.program.verify().unwrap();
    let (t_ret, t_mem, t_stores) = store_trace(&compiled.program, FUEL);
    assert_eq!(t_ret, ref_ret, "transformed return value diverged [{ctx}]");
    assert_eq!(t_mem, ref_mem, "transformed final memory diverged [{ctx}]");
    assert_eq!(
        t_stores, ref_stores,
        "transformed store stream diverged [{ctx}]"
    );

    // Stage 1b: superstep-on interpretation (block memo replay) of both
    // programs is indistinguishable from stepping: same return value, same
    // memory image, same architecturally-executed store stream.
    let (ss_ret, ss_mem, ss_stores) = superstepped_store_trace(&prog, FUEL);
    assert_eq!(
        ss_ret, ref_ret,
        "superstepped return value diverged [{ctx}]"
    );
    assert_eq!(
        ss_mem, ref_mem,
        "superstepped final memory diverged [{ctx}]"
    );
    assert_eq!(
        ss_stores, ref_stores,
        "superstepped store stream diverged [{ctx}]"
    );
    let (ss_ret, ss_mem, ss_stores) = superstepped_store_trace(&compiled.program, FUEL);
    assert_eq!(
        ss_ret, t_ret,
        "superstepped transformed return value diverged [{ctx}]"
    );
    assert_eq!(
        ss_mem, t_mem,
        "superstepped transformed memory diverged [{ctx}]"
    );
    assert_eq!(
        ss_stores, t_stores,
        "superstepped transformed store stream diverged [{ctx}]"
    );

    // Stage 2: the SPT fabric on the transformed program, at every fabric
    // width, with block superstepping both on and off. N=2 is the paper
    // machine; wider rings must commit the same architectural state, and
    // the superstep toggle must not change a single reported number.
    let machine = MachineConfig::default();
    let annots = spt_annotations(&compiled);
    for cores in [2usize, 4, 8] {
        let mut m_on = machine.clone();
        m_on.cores = cores;
        m_on.superstep = true;
        let mut m_off = m_on.clone();
        m_off.superstep = false;
        let (spt_rep, spt_mem) =
            SptSim::new(&compiled.program, m_on, annots.clone()).run_with_memory(FUEL);
        assert!(
            !spt_rep.out_of_fuel,
            "SPT simulation must terminate (cores={cores}) [{ctx}]"
        );
        assert_eq!(
            spt_rep.ret, ref_ret,
            "SPT-committed return value diverged (cores={cores}) [{ctx}]"
        );
        assert_eq!(
            words(&spt_mem),
            ref_mem,
            "SPT-committed memory diverged (cores={cores}) [{ctx}]"
        );
        let (off_rep, off_mem) =
            SptSim::new(&compiled.program, m_off, annots.clone()).run_with_memory(FUEL);
        assert_eq!(
            (off_rep.cycles, off_rep.instrs, off_rep.ret),
            (spt_rep.cycles, spt_rep.instrs, spt_rep.ret),
            "superstep toggle changed timing or result (cores={cores}) [{ctx}]"
        );
        assert_eq!(
            (
                off_rep.forks,
                off_rep.fast_commits,
                off_rep.replays,
                off_rep.kills,
                off_rep.divergence_kills,
                off_rep.spec_misspec,
            ),
            (
                spt_rep.forks,
                spt_rep.fast_commits,
                spt_rep.replays,
                spt_rep.kills,
                spt_rep.divergence_kills,
                spt_rep.spec_misspec,
            ),
            "superstep toggle changed speculation counters (cores={cores}) [{ctx}]"
        );
        assert_eq!(
            words(&off_mem),
            words(&spt_mem),
            "superstep toggle changed committed memory (cores={cores}) [{ctx}]"
        );
        assert_eq!(
            (off_rep.superstep_hits, off_rep.superstep_misses),
            (0, 0),
            "superstep-off run must not touch the memo (cores={cores}) [{ctx}]"
        );
    }

    // Stage 2b: the N=2 fabric is bit-identical to the default machine —
    // same cycles, same counters, same trace bytes. (MachineConfig's
    // default IS two cores, so this pins the fabric generalization to the
    // dual-pipeline behaviour the goldens were recorded against.)
    let sim = SptSim::new(&compiled.program, machine.clone(), annots.clone());
    let untraced = sim.run(FUEL);
    let mut sink_a = spt_trace::RingBufferSink::unbounded();
    let traced = sim.run_traced(FUEL, &mut sink_a);
    assert_eq!(
        traced.cycles, untraced.cycles,
        "tracing perturbed timing [{ctx}]"
    );
    assert_eq!(traced.instrs, untraced.instrs, "[{ctx}]");
    assert_eq!(traced.forks, untraced.forks, "[{ctx}]");
    assert_eq!(traced.fast_commits, untraced.fast_commits, "[{ctx}]");
    assert_eq!(traced.replays, untraced.replays, "[{ctx}]");
    assert_eq!(traced.kills, untraced.kills, "[{ctx}]");
    assert_eq!(
        traced.divergence_kills, untraced.divergence_kills,
        "[{ctx}]"
    );
    assert_eq!(traced.spec_misspec, untraced.spec_misspec, "[{ctx}]");
    let mut sink_b = spt_trace::RingBufferSink::unbounded();
    let _ = sim.run_traced(FUEL, &mut sink_b);
    let bytes_a: String = sink_a.records().map(spt_trace::jsonl).collect();
    let bytes_b: String = sink_b.records().map(spt_trace::jsonl).collect();
    assert_eq!(
        bytes_a, bytes_b,
        "N=2 trace bytes must be deterministic [{ctx}]"
    );
    // No ring-fork events may ever appear on the two-core machine.
    assert!(
        !bytes_a.contains("ring_fork"),
        "N=2 must never emit ring forks [{ctx}]"
    );
    // Trace bytes — and thus any fold of them — are identical whether the
    // superstep flag is up or down (traced runs bypass the memo entirely).
    let mut m_off = machine.clone();
    m_off.superstep = !machine.superstep;
    let sim_off = SptSim::new(&compiled.program, m_off, annots.clone());
    let mut sink_c = spt_trace::RingBufferSink::unbounded();
    let _ = sim_off.run_traced(FUEL, &mut sink_c);
    let bytes_c: String = sink_c.records().map(spt_trace::jsonl).collect();
    assert_eq!(
        bytes_a, bytes_c,
        "superstep toggle changed trace bytes [{ctx}]"
    );

    // Stage 3: the baseline timing model on the original program, with the
    // superstep toggle in both positions.
    let base_annots = original_annotations(&prog, &compiled);
    let (base_rep, base_mem) = simulate_baseline_with_memory(&prog, &machine, &base_annots, FUEL);
    assert!(
        !base_rep.out_of_fuel,
        "baseline simulation must terminate [{ctx}]"
    );
    assert_eq!(
        base_rep.ret, ref_ret,
        "baseline return value diverged [{ctx}]"
    );
    assert_eq!(
        words(&base_mem),
        ref_mem,
        "baseline final memory diverged [{ctx}]"
    );
    let mut m_off = machine.clone();
    m_off.superstep = false;
    let (off_rep, off_mem) = simulate_baseline_with_memory(&prog, &m_off, &base_annots, FUEL);
    assert_eq!(
        (off_rep.cycles, off_rep.instrs, off_rep.ret),
        (base_rep.cycles, base_rep.instrs, base_rep.ret),
        "superstep toggle changed baseline timing or result [{ctx}]"
    );
    assert_eq!(
        words(&off_mem),
        words(&base_mem),
        "superstep toggle changed baseline memory [{ctx}]"
    );
    assert_eq!(
        (off_rep.superstep_hits, off_rep.superstep_misses),
        (0, 0),
        "superstep-off baseline must not touch the memo [{ctx}]"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random store-heavy loops agree across interp, compiled interp,
    /// SPT machine, and baseline machine.
    #[test]
    fn pipeline_matches_reference_interpreter(
        body in prop::collection::vec(stmt(), 1..12),
        trip in 1..15u8,
    ) {
        check_differential(&body, trip);
    }
}

/// Deterministic smoke case: a store-per-iteration reduction loop.
#[test]
fn differential_fixed_store_loop() {
    check_differential(
        &[
            Stmt::Load(0, 1, 2),
            Stmt::Alu(0, 1, 0, 2),
            Stmt::Store(1, 3, 1),
            Stmt::GuardedStore(2, 0, 4, 3),
        ],
        9,
    );
}

/// Deterministic smoke case: guarded stores only fire on some iterations.
#[test]
fn differential_fixed_guarded_loop() {
    check_differential(
        &[
            Stmt::Alu(2, 3, 3, 1),
            Stmt::GuardedStore(3, 2, 0, 1),
            Stmt::Load(4, 2, 0),
            Stmt::Alu(1, 0, 4, 3),
        ],
        12,
    );
}
