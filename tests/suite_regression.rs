//! Suite-wide regression: every synthetic SPECint2000 benchmark goes
//! through the full pipeline at test scale; the aggregate shape must match
//! the paper (positive average speedup, vortex flat, parser/mcf strong).

use spt::experiments::{average_speedup, eval_suite, fig8_rows, fig9_rows};
use spt::RunConfig;
use spt_workloads::Scale;

fn cfg() -> RunConfig {
    let mut c = RunConfig::default();
    c.fuel = 100_000_000;
    c
}

#[test]
fn whole_suite_end_to_end_shape() {
    let outcomes = eval_suite(Scale::Test, &cfg());
    assert_eq!(outcomes.len(), 10);

    // Semantics everywhere (checked inside eval_suite too).
    for o in &outcomes {
        assert!(o.semantics_ok(), "{} diverged", o.name);
        assert!(!o.spt.out_of_fuel, "{} out of fuel", o.name);
    }

    // Headline: positive average program speedup.
    let avg = average_speedup(&outcomes);
    assert!(
        avg > 1.05,
        "average speedup {avg:.3} should be solidly positive"
    );

    let get = |n: &str| outcomes.iter().find(|o| o.name == n).unwrap();

    // vortex ~ flat; parser strong; parser > crafty.
    assert!(get("vortexs").speedup() < 1.06);
    assert!(get("parsers").speedup() > 1.10);
    assert!(get("parsers").speedup() > get("craftys").speedup());

    // Figure 8 shape: decent fast-commit ratios on the speculating
    // benchmarks.
    let f8 = fig8_rows(&outcomes);
    let parsers = f8.iter().find(|r| r.name == "parsers").unwrap();
    assert!(
        parsers.fast_commit_ratio > 0.4,
        "parser fast-commit {}",
        parsers.fast_commit_ratio
    );
    assert!(parsers.misspeculation_ratio < 0.4);

    // Figure 9 shape: contributions roughly decompose each speedup.
    let f9 = fig9_rows(&outcomes);
    for r in &f9 {
        let frac = 1.0 - 1.0 / r.speedup.max(1e-9);
        let sum = r.exec_contrib + r.pipe_contrib + r.dcache_contrib;
        assert!(
            (sum - frac).abs() < 0.12,
            "{}: contributions {sum:.3} vs fraction {frac:.3}",
            r.name
        );
    }
}
